package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/rescache"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/trace"
	"repro/internal/workload"
)

// testTrace generates a small deterministic workload trace.
func testTrace(t *testing.T, refs int) *trace.Trace {
	t.Helper()
	p, err := workload.ByName("ijpeg")
	if err != nil {
		t.Fatal(err)
	}
	return workload.Generate(p, 5, refs)
}

// startServer spins up a Server over httptest and tears it down with
// the test.
func startServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx) //nolint:errcheck
	})
	return s, ts
}

// uploadTrace POSTs tr and returns its digest.
func uploadTrace(t *testing.T, base string, tr *trace.Trace) string {
	t.Helper()
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/traces", "application/octet-stream", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace upload: status %d", resp.StatusCode)
	}
	var up api.TraceUploaded
	if err := json.NewDecoder(resp.Body).Decode(&up); err != nil {
		t.Fatal(err)
	}
	if want := trace.SHA256(tr); up.SHA256 != want {
		t.Fatalf("server digest %s, local %s", up.SHA256, want)
	}
	if up.Refs != tr.Len() {
		t.Fatalf("server refs %d, local %d", up.Refs, tr.Len())
	}
	return up.SHA256
}

// submit POSTs a job and returns the raw response without asserting
// its status.
func submit(t *testing.T, base, sha string, cfgs []sim.Config) *http.Response {
	t.Helper()
	body, err := json.Marshal(api.SubmitRequest{APIVersion: api.Version, TraceSHA256: sha, Configs: cfgs})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// submitOK submits and asserts acceptance, returning the job ID.
func submitOK(t *testing.T, base, sha string, cfgs []sim.Config) string {
	t.Helper()
	resp := submit(t, base, sha, cfgs)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		var e api.Error
		json.NewDecoder(resp.Body).Decode(&e) //nolint:errcheck
		t.Fatalf("submit: status %d: %s", resp.StatusCode, e.Message)
	}
	var sr api.SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if sr.Points != len(cfgs) || sr.JobID == "" {
		t.Fatalf("submit response %+v", sr)
	}
	return sr.JobID
}

// waitJob polls until the job reports done, then returns the status.
func waitJob(t *testing.T, base, id string) api.JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st api.JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State == api.JobDone {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck: %+v", id, st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestSubmitPollMatchesLocalSimulation(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 2, QueueBound: 16})
	tr := testTrace(t, 5000)
	sha := uploadTrace(t, ts.URL, tr)

	cfgs := []sim.Config{sim.Default(sim.VMUltrix), sim.Default(sim.VMIntel)}
	cfgs[1].TLBEntries = 32
	id := submitOK(t, ts.URL, sha, cfgs)
	st := waitJob(t, ts.URL, id)
	if st.Failed != 0 || st.Done != 2 || len(st.Results) != 2 {
		t.Fatalf("status %+v", st)
	}

	local := sweep.Run(tr, cfgs, 1)
	for i, r := range st.Results {
		if r.Error != "" {
			t.Fatalf("point %d: %s", i, r.Error)
		}
		if r.Counters == nil || *r.Counters != local[i].Result.Counters {
			t.Errorf("point %d counters diverge from local simulation", i)
		}
		if r.AvgChainLength != local[i].Result.AvgChainLength {
			t.Errorf("point %d chain length diverges", i)
		}
		if r.Workload != local[i].Result.Workload {
			t.Errorf("point %d workload %q vs local %q", i, r.Workload, local[i].Result.Workload)
		}
	}
}

func TestUnknownTraceAndJobAre404(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 1, QueueBound: 4})
	resp := submit(t, ts.URL, "deadbeef", []sim.Config{sim.Default(sim.VMBase)})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("submit against unknown trace: status %d, want 404", resp.StatusCode)
	}
	r2, err := http.Get(ts.URL + "/v1/traces/deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusNotFound {
		t.Fatalf("GET unknown trace: status %d, want 404", r2.StatusCode)
	}
	r3, err := http.Get(ts.URL + "/v1/jobs/job-999")
	if err != nil {
		t.Fatal(err)
	}
	r3.Body.Close()
	if r3.StatusCode != http.StatusNotFound {
		t.Fatalf("GET unknown job: status %d, want 404", r3.StatusCode)
	}
}

func TestInvalidSubmissionsAre400(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 1, QueueBound: 4})
	sha := uploadTrace(t, ts.URL, testTrace(t, 200))

	// Wrong protocol version.
	body, _ := json.Marshal(api.SubmitRequest{APIVersion: 99, TraceSHA256: sha, Configs: []sim.Config{sim.Default(sim.VMBase)}})
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("version mismatch: status %d, want 400", resp.StatusCode)
	}
	// Invalid configuration is the submitter's error, up front.
	resp = submit(t, ts.URL, sha, []sim.Config{sim.Default("nonesuch")})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid config: status %d, want 400", resp.StatusCode)
	}
	// Empty jobs are refused.
	resp = submit(t, ts.URL, sha, nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty job: status %d, want 400", resp.StatusCode)
	}
}

func TestFloodedServerShedsLoadWith429(t *testing.T) {
	// Deterministic flood: before submitting, the test opens a
	// singleflight flight in the shared cache under the exact key of the
	// fill job's first point and holds it. The server's only worker
	// attaches to that flight and blocks, so the remaining 3 of 4
	// accepted points provably stay queued — no timing assumptions —
	// and a 2-point probe (3+2 > 4) must be refused with 429 +
	// Retry-After, not buffered.
	cache, err := rescache.New("", 0)
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Workers: 1, QueueBound: 4, Cache: cache})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	tr := testTrace(t, 2000)
	sha := uploadTrace(t, ts.URL, tr)

	fill := make([]sim.Config, 4)
	for i := range fill {
		fill[i] = sim.Default(sim.VMUltrix)
		fill[i].Seed = uint64(i + 1) // distinct keys: no collapse among fill points
	}
	entered := make(chan struct{})
	release := make(chan struct{})
	holderDone := make(chan struct{})
	stand, err := api.EncodePointResult(api.PointResult{Workload: "stand-in"})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		defer close(holderDone)
		cache.Do(api.Key(sha, fill[0]), func() ([]byte, error) { //nolint:errcheck
			close(entered)
			<-release
			return stand, nil
		})
	}()
	<-entered // the flight exists before the server sees the job

	id := submitOK(t, ts.URL, sha, fill)

	probe := []sim.Config{sim.Default(sim.VMIntel), sim.Default(sim.VMIntel)}
	probe[1].Seed = 99
	got := submit(t, ts.URL, sha, probe)
	if got.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("flooded server answered %d, want 429", got.StatusCode)
	}
	defer got.Body.Close()
	ra := got.Header.Get("Retry-After")
	if ra == "" {
		t.Fatal("429 without Retry-After")
	}
	if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Fatalf("Retry-After %q is not a positive integer", ra)
	}
	var e api.Error
	if err := json.NewDecoder(got.Body).Decode(&e); err != nil || e.Message == "" {
		t.Fatalf("429 body: %q, %v", e.Message, err)
	}

	// An over-bound single job is a client error, not backpressure.
	big := make([]sim.Config, 5)
	for i := range big {
		big[i] = sim.Default(sim.VMBase)
	}
	resp := submit(t, ts.URL, sha, big)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized job: status %d, want 413", resp.StatusCode)
	}

	// Release the held flight: the worker unblocks (its point adopts the
	// stand-in payload via singleflight), the queue drains, and capacity
	// returns.
	close(release)
	<-holderDone
	st := waitJob(t, ts.URL, id)
	if st.Failed != 0 {
		t.Fatalf("fill job failed: %+v", st)
	}
	if !st.Results[0].Cached || st.Results[0].Workload != "stand-in" {
		t.Fatalf("worker did not share the held flight: %+v", st.Results[0])
	}
	id2 := submitOK(t, ts.URL, sha, probe)
	if st := waitJob(t, ts.URL, id2); st.Failed != 0 {
		t.Fatalf("post-flood job failed: %+v", st)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestWarmCacheSecondJobIsAllCached(t *testing.T) {
	cache, err := rescache.New(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	srv, ts := startServer(t, Config{Workers: 2, QueueBound: 16, Cache: cache})
	tr := testTrace(t, 5000)
	sha := uploadTrace(t, ts.URL, tr)
	cfgs := []sim.Config{sim.Default(sim.VMUltrix), sim.Default(sim.VMIntel), sim.Default(sim.VMBase)}

	cold := waitJob(t, ts.URL, submitOK(t, ts.URL, sha, cfgs))
	if cold.Cached != 0 || cold.Failed != 0 {
		t.Fatalf("cold run: %+v", cold)
	}
	simulatedAfterCold := srv.simulated.Load()
	if simulatedAfterCold != uint64(len(cfgs)) {
		t.Fatalf("cold run simulated %d points, want %d", simulatedAfterCold, len(cfgs))
	}

	warm := waitJob(t, ts.URL, submitOK(t, ts.URL, sha, cfgs))
	if warm.Cached != len(cfgs) {
		t.Fatalf("warm run cached %d of %d points: %+v", warm.Cached, len(cfgs), warm)
	}
	if srv.simulated.Load() != simulatedAfterCold {
		t.Fatal("warm run re-simulated cached points")
	}
	for i := range cfgs {
		if *warm.Results[i].Counters != *cold.Results[i].Counters {
			t.Fatalf("point %d: cached counters differ from cold counters", i)
		}
		if !warm.Results[i].Cached {
			t.Fatalf("point %d not marked cached", i)
		}
	}
}

func TestQuarantinedPointReportsCategoryOthersSucceed(t *testing.T) {
	// A point that exhausts its deadline is reported with the simerr
	// taxonomy category while its siblings complete — the sweep driver's
	// quarantine semantics, through the service.
	_, ts := startServer(t, Config{Workers: 2, QueueBound: 8, PointTimeout: time.Nanosecond * 1, Retries: 0})
	sha := uploadTrace(t, ts.URL, testTrace(t, 50000))
	st := waitJob(t, ts.URL, submitOK(t, ts.URL, sha, []sim.Config{sim.Default(sim.VMUltrix)}))
	if st.Failed != 1 {
		t.Fatalf("nanosecond deadline not exceeded: %+v", st)
	}
	if st.Results[0].Category != "timeout" {
		t.Fatalf("category %q, want timeout", st.Results[0].Category)
	}
	if st.Results[0].Error == "" {
		t.Fatal("failed point carries no error text")
	}
}

func TestGracefulDrainFinishesQueuedWorkAndRefusesNew(t *testing.T) {
	s := New(Config{Workers: 1, QueueBound: 8})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	tr := testTrace(t, 20000)
	sha := uploadTrace(t, ts.URL, tr)
	cfgs := make([]sim.Config, 4)
	for i := range cfgs {
		cfgs[i] = sim.Default(sim.VMUltrix)
		cfgs[i].Seed = uint64(100 + i)
	}
	id := submitOK(t, ts.URL, sha, cfgs)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	wg.Add(1)
	var shutErr error
	go func() {
		defer wg.Done()
		shutErr = s.Shutdown(ctx)
	}()

	// While draining, new submissions bounce with 503.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp := submit(t, ts.URL, sha, []sim.Config{sim.Default(sim.VMBase)})
		code := resp.StatusCode
		resp.Body.Close()
		if code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("draining server still accepting jobs (status %d)", code)
		}
		time.Sleep(time.Millisecond)
	}

	wg.Wait()
	if shutErr != nil {
		t.Fatalf("drain: %v", shutErr)
	}
	// Every accepted point ran to completion despite the drain.
	st := waitJob(t, ts.URL, id)
	if st.Done != 4 || st.Failed != 0 {
		t.Fatalf("drained job: %+v", st)
	}
}

func TestShutdownDeadlineCancelsInflight(t *testing.T) {
	s := New(Config{Workers: 1, QueueBound: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	sha := uploadTrace(t, ts.URL, testTrace(t, 500000))
	id := submitOK(t, ts.URL, sha, []sim.Config{sim.Default(sim.VMUltrix)})

	// An immediate deadline: the in-flight point is cancelled
	// cooperatively and Shutdown still returns (with ctx's error).
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.Shutdown(ctx); err != context.Canceled {
		t.Fatalf("Shutdown = %v, want context.Canceled", err)
	}
	// The point finished — as a cancellation failure, not a hang.
	st := waitJob(t, ts.URL, id)
	if st.Done != 1 {
		t.Fatalf("cancelled point never resolved: %+v", st)
	}
	if st.Failed == 1 && st.Results[0].Category == "" {
		t.Fatalf("cancelled point has no category: %+v", st.Results[0])
	}
}

func TestHealthAndMetrics(t *testing.T) {
	cache, _ := rescache.New("", 0)
	s, ts := startServer(t, Config{Workers: 1, QueueBound: 4, Cache: cache})
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h api.Health
	err = json.NewDecoder(resp.Body).Decode(&h)
	resp.Body.Close()
	if err != nil || h.Status != "ok" || h.Engine == "" {
		t.Fatalf("healthz = %+v, %v", h, err)
	}
	m := s.metrics()
	for _, key := range []string{"engine", "queue_depth", "queue_bound", "inflight", "workers", "cache"} {
		if _, ok := m[key]; !ok {
			t.Errorf("metrics missing %q", key)
		}
	}
}

func TestTraceStoreEvictsLRUWithoutBreakingJobs(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 1, QueueBound: 8, MaxTraces: 2})
	t1 := testTrace(t, 1000)
	p, _ := workload.ByName("gcc")
	t2 := workload.Generate(p, 6, 1000)
	p3, _ := workload.ByName("vortex")
	t3 := workload.Generate(p3, 7, 1000)

	sha1 := uploadTrace(t, ts.URL, t1)
	sha2 := uploadTrace(t, ts.URL, t2)
	id := submitOK(t, ts.URL, sha1, []sim.Config{sim.Default(sim.VMBase)}) // touches t1; job holds its own reference
	uploadTrace(t, ts.URL, t3)                                             // evicts t2, the least recently used

	for sha, want := range map[string]int{sha1: http.StatusOK, sha2: http.StatusNotFound} {
		resp, err := http.Get(fmt.Sprintf("%s/v1/traces/%s", ts.URL, sha))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("GET trace %s: status %d, want %d", sha, resp.StatusCode, want)
		}
	}
	// The in-flight job is unaffected by evictions.
	if st := waitJob(t, ts.URL, id); st.Failed != 0 {
		t.Fatalf("job broken by trace eviction: %+v", st)
	}
}

// TestTraceUploadAllFormats: the upload endpoint auto-detects every
// format the CLIs read. The same reference stream posted as classic
// binary and as .vmtrc blocks must land under the same digest (the
// digest is over canonical serialized form, not the wire bytes), and
// Dinero text must be accepted too.
func TestTraceUploadAllFormats(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 1, QueueBound: 16})
	tr := testTrace(t, 4000)
	wantSHA := trace.SHA256(tr)

	post := func(body *bytes.Buffer) api.TraceUploaded {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/traces", "application/octet-stream", body)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("upload status %d", resp.StatusCode)
		}
		var up api.TraceUploaded
		if err := json.NewDecoder(resp.Body).Decode(&up); err != nil {
			t.Fatal(err)
		}
		return up
	}

	var bin bytes.Buffer
	if _, err := tr.WriteTo(&bin); err != nil {
		t.Fatal(err)
	}
	if up := post(&bin); up.SHA256 != wantSHA || up.Refs != tr.Len() {
		t.Fatalf("binary upload %+v, want sha %s refs %d", up, wantSHA, tr.Len())
	}

	var vmtrc bytes.Buffer
	if _, err := tr.WriteVMTRC(&vmtrc); err != nil {
		t.Fatal(err)
	}
	if up := post(&vmtrc); up.SHA256 != wantSHA || up.Refs != tr.Len() {
		t.Fatalf(".vmtrc upload %+v, want sha %s refs %d — vmtrc decode is not ref-identical", up, wantSHA, tr.Len())
	}

	din := bytes.NewBufferString("0 4000\n2 1000\n0 4008\n1 2000\n")
	if up := post(din); up.Refs == 0 {
		t.Fatalf("dinero upload rejected: %+v", up)
	}
}

// TestTraceUploadRejectsGarbage: undetectable bytes must come back as
// a 400, not a panic or a silently-empty trace.
func TestTraceUploadRejectsGarbage(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 1, QueueBound: 16})
	resp, err := http.Post(ts.URL+"/v1/traces", "application/octet-stream",
		bytes.NewBufferString("MMUTRC99 this is no trace"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage upload status %d, want 400", resp.StatusCode)
	}
}

// TestMultiWorkerServerMatchesSerial: the same campaign submitted to a
// 1-worker daemon and a 4-worker daemon must produce identical results
// point for point — the job queue reassembles by index, never by
// completion order.
func TestMultiWorkerServerMatchesSerial(t *testing.T) {
	tr := testTrace(t, 8000)
	cfgs := make([]sim.Config, 0, 8)
	for _, vm := range []string{sim.VMUltrix, sim.VMIntel} {
		for _, l1 := range []int{1 << 10, 4 << 10, 16 << 10, 64 << 10} {
			c := sim.Default(vm)
			c.L1SizeBytes = l1
			cfgs = append(cfgs, c)
		}
	}

	results := make([][]api.PointResult, 2)
	for i, workers := range []int{1, 4} {
		_, ts := startServer(t, Config{Workers: workers, QueueBound: 64})
		sha := uploadTrace(t, ts.URL, tr)
		st := waitJob(t, ts.URL, submitOK(t, ts.URL, sha, cfgs))
		if st.Failed != 0 || st.Done != len(cfgs) {
			t.Fatalf("workers=%d status %+v", workers, st)
		}
		results[i] = st.Results
	}
	for i := range cfgs {
		serial, parallel := results[0][i], results[1][i]
		if serial.Error != "" || parallel.Error != "" {
			t.Fatalf("point %d errored: %q / %q", i, serial.Error, parallel.Error)
		}
		if *serial.Counters != *parallel.Counters {
			t.Errorf("point %d: 4-worker counters diverge from 1-worker", i)
		}
		if serial.AvgChainLength != parallel.AvgChainLength || serial.Workload != parallel.Workload {
			t.Errorf("point %d: summary fields diverge across worker counts", i)
		}
	}
}
