// Streaming ingest: POST /v1/stream simulates a trace while it is still
// arriving, pushing timeline rows back as they complete.
//
// Protocol: the request body is one JSON api.StreamRequest immediately
// followed by raw .vmtrc bytes on the same connection. The response is
// NDJSON api.StreamEvents — one "ready" after the trace header decodes,
// one "sample" per completed SampleEvery interval (pushed live, while
// the upload is still in flight), then a terminal "result" or "error".
// The connection is full-duplex for its whole life: the server reads
// blocks and writes rows concurrently.
//
// Backpressure is structural. The decoder holds exactly one block
// resident (two small reusable buffers), the simulator consumes it
// before the next read, and the unread remainder of the upload sits in
// the kernel's TCP window — so a fast client cannot balloon a slow
// server's memory, and the per-stream footprint is a constant
// regardless of trace size. Admission is bounded too: at most
// Config.MaxStreams live streams, the rest refused with 429 and a
// Retry-After hint, mirroring the point queue's explicit-backpressure
// contract. A draining server refuses new streams with 503 but
// finalizes in-flight ones: Shutdown's WaitGroup includes every live
// stream, exactly as it includes in-flight points.
package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/api"
	"repro/internal/sim"
	"repro/internal/simerr"
	"repro/internal/trace"
	"repro/internal/version"
)

// handleStream is the POST /v1/stream handler.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	// Admission, under the same lock and with the same closed-check as
	// runCampaign: once admitted, the stream joins the drain WaitGroup,
	// and the check-then-Add ordering keeps Add safely ahead of
	// Shutdown's Wait.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	if s.streams >= s.cfg.MaxStreams {
		s.mu.Unlock()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests,
			"all %d stream slots in use; retry shortly or use POST /v1/jobs", s.cfg.MaxStreams)
		return
	}
	s.streams++
	s.wg.Add(1)
	s.mu.Unlock()
	s.streamsTotal.Inc()
	defer func() {
		s.mu.Lock()
		s.streams--
		s.mu.Unlock()
		s.wg.Done()
	}()

	// The JSON preamble: everything the json.Decoder over-read past the
	// closing brace is the start of the .vmtrc body, so the two readers
	// are stitched back together with MultiReader.
	dec := json.NewDecoder(r.Body)
	var req api.StreamRequest
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding stream request: %v", err)
		return
	}
	if req.APIVersion != api.Version {
		writeError(w, http.StatusBadRequest, "api_version %d not supported (server speaks %d)", req.APIVersion, api.Version)
		return
	}
	if err := req.Config.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "config: %v", err)
		return
	}
	body := io.MultiReader(dec.Buffered(), r.Body)

	rd, err := trace.NewVMTRCStreamReader(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading trace header: %v", err)
		return
	}
	eng, err := sim.NewStreamer(req.Config)
	if err != nil {
		writeError(w, http.StatusBadRequest, "config: %v", err)
		return
	}
	if err := eng.BeginStream(rd.Name(), rd.Len()); err != nil {
		writeError(w, http.StatusInternalServerError, "opening stream: %v", err)
		return
	}

	// From here the response status is committed; failures become
	// terminal "error" events. The connection goes full-duplex, and the
	// listener's request read deadline (tuned for short exchanges) is
	// lifted — a long trace legitimately streams for longer.
	rc := http.NewResponseController(w)
	rc.EnableFullDuplex()            //nolint:errcheck // HTTP/2 is duplex without it
	rc.SetReadDeadline(time.Time{})  //nolint:errcheck
	rc.SetWriteDeadline(time.Time{}) //nolint:errcheck
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	emit := func(ev api.StreamEvent) bool {
		if err := enc.Encode(ev); err != nil {
			return false
		}
		return rc.Flush() == nil
	}
	fail := func(err error) {
		emit(api.StreamEvent{Type: api.StreamError, Error: err.Error(), Category: simerr.Category(err)})
	}

	if !emit(api.StreamEvent{
		Type:      api.StreamReady,
		Engine:    version.Engine(),
		Trace:     rd.Name(),
		TotalRefs: rd.Len(),
	}) {
		return
	}

	var lastBytes int64
	emitted := 0 // sample events pushed so far == len(res.Timeline) prefix
	for {
		// Between blocks is the cancellation point: the client hanging up
		// aborts its own stream; a hard server cancel (Shutdown's context
		// expiring) aborts everyone's.
		if err := r.Context().Err(); err != nil {
			return // client is gone; nothing left to tell it
		}
		if err := s.baseCtx.Err(); err != nil {
			fail(fmt.Errorf("server shutting down: %w", simerr.ErrCancelled))
			return
		}
		chunk, err := rd.NextChunk()
		if err == io.EOF {
			break
		}
		if err != nil {
			fail(err)
			return
		}
		samples, err := eng.Feed(chunk)
		if err != nil {
			fail(err)
			return
		}
		s.streamRefs.Add(uint64(len(chunk)))
		s.streamBytes.Add(uint64(rd.BytesRead() - lastBytes))
		lastBytes = rd.BytesRead()
		for i := range samples {
			if !emit(api.StreamEvent{Type: api.StreamSample, Sample: &samples[i]}) {
				return
			}
			emitted++
		}
	}

	res, err := eng.EndStream()
	if err != nil {
		fail(err)
		return
	}
	// The trailing partial interval (if any) exists only after EndStream;
	// push it so the sample events and Result.Timeline are identical.
	for i := emitted; i < len(res.Timeline); i++ {
		if !emit(api.StreamEvent{Type: api.StreamSample, Sample: &res.Timeline[i]}) {
			return
		}
	}
	dg := eng.Digest()
	emit(api.StreamEvent{
		Type: api.StreamResult,
		Result: &api.PointResult{
			Workload:       res.Workload,
			Counters:       &res.Counters,
			AvgChainLength: res.AvgChainLength,
			PerCore:        res.PerCore,
		},
		Digest: &dg,
		Refs:   rd.Decoded(),
		Bytes:  rd.BytesRead(),
	})
}
