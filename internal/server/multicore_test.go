package server

import (
	"bytes"
	"net/http"
	"testing"

	"repro/internal/api"
	"repro/internal/client"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/workload"
)

// TestMulticoreRemoteMatchesLocal is the acceptance gate's -remote
// half: a cores × policy campaign submitted to the server must rebuild
// — per-core counters included — into sweep points whose CSV is
// byte-identical to a local serial run over the same trace.
func TestMulticoreRemoteMatchesLocal(t *testing.T) {
	tr, err := workload.Multicore([]string{"gcc", "ijpeg"}, 9, 4, 12_000, 1_000)
	if err != nil {
		t.Fatal(err)
	}
	base := sim.Default(sim.VMUltrix)
	base.MemFrames = 128
	base.ShootdownCost = 60
	space := sweep.Space{
		Base:       base,
		VMs:        []string{sim.VMUltrix, sim.VMIntel},
		Cores:      []int{1, 2, 4},
		OSPolicies: []string{"round-robin", "lru"},
	}
	cfgs := space.Configs()

	_, ts := startServer(t, Config{Workers: 4, QueueBound: 64})
	sha := uploadTrace(t, ts.URL, tr)
	st := waitJob(t, ts.URL, submitOK(t, ts.URL, sha, cfgs))
	if st.Failed != 0 || st.Done != len(cfgs) {
		t.Fatalf("status %+v", st)
	}

	local := sweep.Run(tr, cfgs, 1)
	for i, r := range st.Results {
		remote := client.ToSweepPoint(cfgs[i], r)
		if remote.Err != nil {
			t.Fatalf("point %s: %v", cfgs[i].Label(), remote.Err)
		}
		if got, want := sweep.CSVRow("mc", remote), sweep.CSVRow("mc", local[i]); got != want {
			t.Errorf("point %s: remote CSV row diverges:\nremote: %s\nlocal:  %s", cfgs[i].Label(), got, want)
		}
		if cores := cfgs[i].Cores; cores > 1 {
			if len(remote.Result.PerCore) != cores {
				t.Fatalf("point %s: %d per-core entries over the wire, want %d",
					cfgs[i].Label(), len(remote.Result.PerCore), cores)
			}
			var sum uint64
			for c := range remote.Result.PerCore {
				if remote.Result.PerCore[c] != local[i].Result.PerCore[c] {
					t.Errorf("point %s core %d: counters diverge over the wire", cfgs[i].Label(), c)
				}
				sum += remote.Result.PerCore[c].UserInstrs
			}
			if sum != remote.Result.Counters.UserInstrs {
				t.Errorf("point %s: per-core instrs sum %d != cluster %d",
					cfgs[i].Label(), sum, remote.Result.Counters.UserInstrs)
			}
		}
	}
}

// TestMulticoreStreamMatchesBatchOverTheWire drives the streaming
// endpoint with a Cores > 1 config: the handler must dispatch to the
// multicore cluster and the terminal result — cluster counters, the
// sampled timeline, and the per-core break-down — must equal a local
// batch run bit for bit.
func TestMulticoreStreamMatchesBatchOverTheWire(t *testing.T) {
	tr, err := workload.Multicore([]string{"gcc", "ijpeg"}, 9, 2, 20_000, 1_000)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.Default(sim.VMUltrix)
	cfg.Cores = 2
	cfg.OSPolicy = "clock"
	cfg.MemFrames = 96
	cfg.ShootdownCost = 60
	cfg.WarmupInstrs = 4_000
	cfg.SampleEvery = 3_000

	batch, err := sim.Simulate(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}

	_, ts := startServer(t, Config{Workers: 2})
	resp, err := http.Post(ts.URL+"/v1/stream", "application/octet-stream",
		bytes.NewReader(streamBody(t, cfg, tr)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	evs := readEvents(t, resp.Body)
	last := evs[len(evs)-1]
	if last.Type != api.StreamResult {
		t.Fatalf("terminal event %+v, want result", last)
	}
	if *last.Result.Counters != batch.Counters {
		t.Fatalf("streamed multicore counters diverge from batch:\n got  %+v\n want %+v",
			*last.Result.Counters, batch.Counters)
	}
	if len(last.Result.PerCore) != 2 {
		t.Fatalf("terminal result carries %d per-core entries, want 2", len(last.Result.PerCore))
	}
	for c := range last.Result.PerCore {
		if last.Result.PerCore[c] != batch.PerCore[c] {
			t.Errorf("core %d counters diverge over the wire", c)
		}
	}
	samples := evs[1 : len(evs)-1]
	if len(samples) != len(batch.Timeline) {
		t.Fatalf("got %d sample events, batch recorded %d", len(samples), len(batch.Timeline))
	}
	for i, ev := range samples {
		if *ev.Sample != batch.Timeline[i] {
			t.Fatalf("sample %d diverges:\n got  %+v\n want %+v", i, *ev.Sample, batch.Timeline[i])
		}
	}
}
