// Command genspecs regenerates the bundled machines/*.json files as the
// exact canonical serialization of the built-in specs. Run from the
// repository root after changing internal/machine/registry.go:
//
//	go run ./internal/machine/genspecs
//
// TestBundledSpecFiles pins the files to the registry byte-for-byte, so
// a registry change without a regeneration fails the tests.
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/machine"
)

func main() {
	for _, s := range machine.Bundled() {
		b, err := machine.Canonical(s)
		if err != nil {
			panic(err)
		}
		path := filepath.Join("machines", s.Name+".json")
		if err := os.WriteFile(path, b, 0o644); err != nil {
			panic(err)
		}
		fmt.Println("wrote", path)
	}
}
