package machine

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// Canonical returns the spec's canonical JSON serialization: fixed field
// order (declaration order, with every field present — no omitempty),
// two-space indentation, trailing newline. Two specs produce identical
// canonical bytes iff they are equal, which is what lets the simulation
// service's content-addressed result cache key on it: the same declared
// machine always hashes to the same key, across processes and releases.
// The bundled spec files under machines/ are exactly these bytes.
func Canonical(s *Spec) ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	// Normalize a nil Levels slice to empty so "levels": [] serializes
	// identically whether the spec was built in Go (nil) or parsed from
	// JSON ([]).
	c := clone(s)
	if c.TLB.Levels == nil {
		c.TLB.Levels = []TLBLevel{}
	}
	out, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("machine: %s: %w", s.Name, err)
	}
	return append(out, '\n'), nil
}

// Parse decodes and validates a machine spec from JSON. Unknown fields
// are rejected: a typo in a config file should fail loudly, not silently
// fall back to a default.
func Parse(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("machine: parsing spec: %w", err)
	}
	// Trailing garbage after the JSON document is as suspect as an
	// unknown field.
	if dec.More() {
		return nil, fmt.Errorf("machine: trailing data after spec document")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Load reads and validates a machine spec file (the -machine CLI path).
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("machine: %w", err)
	}
	s, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, path)
	}
	return s, nil
}
