// Package machine is the pluggable machine registry: a memory-management
// organization declared as data — TLB hierarchy, refill mechanism,
// page-table organization, and handler cost model — instead of engine
// code. A Spec is serializable to and from JSON, validated before use,
// and buildable into a walker by internal/mmu and into a full simulated
// machine by internal/sim, so a new hardware scenario is a config file,
// not engine surgery.
//
// The registry bundles the paper's six organizations (Table 1), the
// §4.2/§5 hybrids, and the two-level-TLB extension; Lookup resolves a
// registered name, Load/Parse read a custom spec from JSON, and Register
// adds one programmatically. Canonical produces the fixed-order
// serialization the simulation service's content-addressed result cache
// keys on — two specs serialize identically iff they are equal — and the
// bundled spec files under machines/ at the repository root are exactly
// these canonical bytes, pinned by tests.
//
// MACHINES.md at the repository root documents every field, its valid
// range, and the bundled specs in full.
package machine

import (
	"fmt"

	"repro/internal/tlb"
)

// Refill mechanism kinds (Spec.Refill.Kind).
const (
	// RefillNone is no VM system at all: the BASE reference machine.
	RefillNone = "none"
	// RefillSoftware is a software miss handler: a precise interrupt is
	// taken and handler instructions are fetched through the I-caches.
	RefillSoftware = "software"
	// RefillHardware is a hardware state machine: a fixed cycle cost,
	// no interrupt, no instruction-cache footprint.
	RefillHardware = "hardware"
	// RefillPFSM is the paper's programmable finite-state-machine
	// proposal (§5): a hardware walker whose table format and per-walk
	// cycle cost are software-defined.
	RefillPFSM = "pfsm"
)

// Refill triggers (Spec.Refill.Trigger).
const (
	// TriggerTLBMiss runs the walker on a first-level TLB miss that the
	// (optional) second-level TLB also misses.
	TriggerTLBMiss = "tlb-miss"
	// TriggerCacheMiss runs the walker on a user-level L2 cache miss —
	// the softvm/VMP no-TLB organizations.
	TriggerCacheMiss = "cache-miss"
	// TriggerNone marks the BASE machine (no refill to trigger).
	TriggerNone = ""
)

// Page-table organization kinds (Spec.PageTable.Kind), the paper's
// Figures 1–5.
const (
	// PTNone is no page table (BASE).
	PTNone = "none"
	// PTTwoTierBottomUp is the ULTRIX-style two-tiered hierarchical
	// table walked bottom-up: the leaf PTE is loaded through the D-TLB,
	// with a nested physical root access when the mapping page itself
	// is unmapped.
	PTTwoTierBottomUp = "two-tier-bottomup"
	// PTThreeTierBottomUp is the MACH-style three-tiered table walked
	// bottom-up with user, kernel, and root levels.
	PTThreeTierBottomUp = "three-tier-bottomup"
	// PTTwoTierTopDown is the x86-style two-tiered table walked
	// top-down in physical space (root PTE referenced on every miss).
	PTTwoTierTopDown = "two-tier-topdown"
	// PTHashedInverted is the PA-RISC-style hashed inverted table:
	// the faulting address hashes to a collision chain of 16-byte PTEs
	// in physical, cacheable space.
	PTHashedInverted = "hashed-inverted"
	// PTClustered is the Talluri & Hill-style clustered/subblocked
	// hashed table whose entries each map a cluster of consecutive
	// pages.
	PTClustered = "clustered"
	// PTDisjunctTwoTier is the softvm/VMP disjunct two-tiered table
	// (NOTLB): the UPTE is a virtual address in the disjunct window,
	// the root PTE physical.
	PTDisjunctTwoTier = "disjunct-two-tier"
)

// TLBLevel describes one level of the TLB hierarchy. Level 1 is the
// split I/D pair the reference stream probes every instruction; level 2
// is a unified second-level TLB behind it.
type TLBLevel struct {
	// Entries is the slot count (per side for level 1, total for the
	// unified level 2).
	Entries int `json:"entries"`
	// Assoc is the set-associativity: 0 means fully associative (the
	// paper's configuration). Level 1 must be fully associative (an
	// engine constraint); level 2 may be n-way set-associative, indexed
	// by the (ASID-tagged) VPN modulo the set count.
	Assoc int `json:"assoc"`
	// Replacement is the replacement policy: "random" (the paper's
	// configuration), "lru", or "fifo".
	Replacement string `json:"replacement"`
	// ProtectedSlots reserves slots for root/kernel PTEs (16 for the
	// MIPS-style partitioned TLBs). Level 1 only; must be 0 on level 2.
	ProtectedSlots int `json:"protected_slots"`
	// HitLatency is the cycles charged when this level satisfies a miss
	// in the level above it. Level 2 only (level 1 hits are free, as in
	// the paper); 0 on level 2 selects the default of 2 cycles.
	HitLatency int `json:"hit_latency"`
}

// TLBSpec declares the machine's TLB hierarchy. An empty Levels slice
// means the machine translates without TLBs (NOTLB, SPUR, BASE).
type TLBSpec struct {
	// ASIDTagged: TLB entries carry address-space ids, so nothing is
	// flushed on a context switch. False models the classical x86,
	// which must flush on every switch. Machines without TLBs set it
	// true vacuously (their virtual caches are ASID-tagged).
	ASIDTagged bool `json:"asid_tagged"`
	// Levels lists the hierarchy from level 1 down; at most two levels
	// are supported.
	Levels []TLBLevel `json:"levels"`
}

// RefillSpec declares the miss-handling mechanism.
type RefillSpec struct {
	// Kind is one of RefillNone, RefillSoftware, RefillHardware,
	// RefillPFSM.
	Kind string `json:"kind"`
	// Trigger is TriggerTLBMiss or TriggerCacheMiss ("" for RefillNone).
	Trigger string `json:"trigger"`
}

// PageTableSpec declares the page-table organization the walker walks.
type PageTableSpec struct {
	// Kind is one of the PT… constants.
	Kind string `json:"kind"`
}

// CostSpec is the handler cost model (paper Table 4): instruction counts
// for software handlers, cycle counts for hardware walkers. Fields that
// do not apply to the declared refill/page-table shape must be zero.
type CostSpec struct {
	// UserHandlerInstrs is the first-level software handler length in
	// instructions (fetched through the I-caches).
	UserHandlerInstrs int `json:"user_handler_instrs"`
	// KernelHandlerInstrs is the mid-level nested handler length
	// (three-tier tables only).
	KernelHandlerInstrs int `json:"kernel_handler_instrs"`
	// RootHandlerInstrs is the root-level nested handler length.
	RootHandlerInstrs int `json:"root_handler_instrs"`
	// RootAdminLoads is the number of administrative data loads the
	// root handler performs (MACH's expensive exception path).
	RootAdminLoads int `json:"root_admin_loads"`
	// WalkCycles is the hardware state machine's per-walk cycle cost
	// (hardware and pfsm refills).
	WalkCycles int `json:"walk_cycles"`
	// MappedWalkCycles is the hardware bottom-up walker's cheaper cost
	// when the mapping page is already TLB-resident (HW-MIPS's 4 versus
	// the full 7).
	MappedWalkCycles int `json:"mapped_walk_cycles"`
	// RootWalkCycles is the hardware nested-walk cost for cache-miss-
	// triggered walkers whose leaf PTE load misses the L2 (SPUR's 4).
	RootWalkCycles int `json:"root_walk_cycles"`
	// ShootdownCycles is the IPI-plus-remote-flush cost charged per
	// remote core invalidated when the OS evicts a page (multicore runs
	// with a bounded memory budget only; see Config.ShootdownCost).
	ShootdownCycles int `json:"shootdown_cycles"`
}

// Spec is one machine declared as data. Construct by hand, via Parse /
// Load from JSON, or via Lookup from the registry; call Validate before
// building.
type Spec struct {
	// Name identifies the machine ("ultrix", "l2tlb", …): lowercase
	// letters, digits, and dashes.
	Name string `json:"name"`
	// Description is a one-line human summary, shown by -list-vms.
	Description string `json:"description"`
	// TLB is the TLB hierarchy.
	TLB TLBSpec `json:"tlb"`
	// Refill is the miss-handling mechanism.
	Refill RefillSpec `json:"refill"`
	// PageTable is the table organization the walker walks.
	PageTable PageTableSpec `json:"page_table"`
	// Costs is the handler cost model.
	Costs CostSpec `json:"costs"`
}

// L1 returns the first-level TLB spec and whether one exists.
func (s *Spec) L1() (TLBLevel, bool) {
	if len(s.TLB.Levels) == 0 {
		return TLBLevel{}, false
	}
	return s.TLB.Levels[0], true
}

// L2 returns the second-level TLB spec and whether one exists.
func (s *Spec) L2() (TLBLevel, bool) {
	if len(s.TLB.Levels) < 2 {
		return TLBLevel{}, false
	}
	return s.TLB.Levels[1], true
}

// UsesTLB reports whether the machine translates through TLBs.
func (s *Spec) UsesTLB() bool { return len(s.TLB.Levels) > 0 }

// RefillEquivalent reports whether two specs declare the same miss-
// handling behaviour — refill mechanism, page-table organization, and
// cost model — ignoring name, description, and TLB hierarchy. The
// differential oracle uses it to recognize a custom machine whose
// walker it has a reference model for.
func (s *Spec) RefillEquivalent(o *Spec) bool {
	return s.Refill == o.Refill && s.PageTable == o.PageTable && s.Costs == o.Costs
}

// maxHandlerInstrs bounds every cost field: generous against any real
// handler, tight enough to catch a units mistake (cycles entered as
// nanoseconds, say) at validation instead of mid-sweep.
const maxHandlerInstrs = 100_000

// maxTLBEntries bounds a TLB level's slot count.
const maxTLBEntries = 1 << 20

// ParsePolicy maps a replacement-policy name to its tlb.Policy.
func ParsePolicy(name string) (tlb.Policy, error) {
	switch name {
	case "random":
		return tlb.Random, nil
	case "lru":
		return tlb.LRU, nil
	case "fifo":
		return tlb.FIFO, nil
	default:
		return 0, fmt.Errorf("machine: unknown replacement policy %q (have random, lru, fifo)", name)
	}
}

// Validate reports whether the spec is internally consistent and names a
// buildable machine. The checks mirror what mmu.Build and the engine
// can actually construct, so a spec that validates always builds.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("machine: spec has no name")
	}
	for _, r := range s.Name {
		if (r < 'a' || r > 'z') && (r < '0' || r > '9') && r != '-' {
			return fmt.Errorf("machine: name %q may use only lowercase letters, digits, and dashes", s.Name)
		}
	}
	if err := s.validateTLB(); err != nil {
		return fmt.Errorf("machine: %s: %w", s.Name, err)
	}
	if err := s.validateRefill(); err != nil {
		return fmt.Errorf("machine: %s: %w", s.Name, err)
	}
	return nil
}

// validateTLB checks the TLB hierarchy section.
func (s *Spec) validateTLB() error {
	if len(s.TLB.Levels) > 2 {
		return fmt.Errorf("tlb: %d levels declared; the engine supports at most 2", len(s.TLB.Levels))
	}
	for i, l := range s.TLB.Levels {
		lvl := i + 1
		if l.Entries <= 0 || l.Entries > maxTLBEntries {
			return fmt.Errorf("tlb level %d: entries %d outside [1, %d]", lvl, l.Entries, maxTLBEntries)
		}
		if _, err := ParsePolicy(l.Replacement); err != nil {
			return fmt.Errorf("tlb level %d: %w", lvl, err)
		}
		if l.Assoc < 0 {
			return fmt.Errorf("tlb level %d: associativity %d must be non-negative", lvl, l.Assoc)
		}
		switch lvl {
		case 1:
			if l.Assoc != 0 {
				return fmt.Errorf("tlb level 1: must be fully associative (assoc 0), got %d-way", l.Assoc)
			}
			if l.ProtectedSlots < 0 || l.ProtectedSlots >= l.Entries {
				return fmt.Errorf("tlb level 1: protected slots %d must be in [0, entries %d)", l.ProtectedSlots, l.Entries)
			}
			if l.HitLatency != 0 {
				return fmt.Errorf("tlb level 1: hit latency must be 0 (first-level hits are free)")
			}
		case 2:
			if l.Assoc > 0 && l.Entries%l.Assoc != 0 {
				return fmt.Errorf("tlb level 2: entries %d not divisible by associativity %d", l.Entries, l.Assoc)
			}
			if l.ProtectedSlots != 0 {
				return fmt.Errorf("tlb level 2: protected slots only apply to level 1")
			}
			if l.HitLatency < 0 || l.HitLatency > maxHandlerInstrs {
				return fmt.Errorf("tlb level 2: hit latency %d outside [0, %d]", l.HitLatency, maxHandlerInstrs)
			}
		}
	}
	return nil
}

// validateRefill checks the refill/page-table/cost sections and their
// cross-constraints.
func (s *Spec) validateRefill() error {
	c := s.Costs
	for _, f := range []struct {
		name string
		v    int
	}{
		{"user_handler_instrs", c.UserHandlerInstrs},
		{"kernel_handler_instrs", c.KernelHandlerInstrs},
		{"root_handler_instrs", c.RootHandlerInstrs},
		{"root_admin_loads", c.RootAdminLoads},
		{"walk_cycles", c.WalkCycles},
		{"mapped_walk_cycles", c.MappedWalkCycles},
		{"root_walk_cycles", c.RootWalkCycles},
		{"shootdown_cycles", c.ShootdownCycles},
	} {
		if f.v < 0 || f.v > maxHandlerInstrs {
			return fmt.Errorf("costs: %s %d outside [0, %d]", f.name, f.v, maxHandlerInstrs)
		}
	}

	switch s.Refill.Kind {
	case RefillNone:
		if s.Refill.Trigger != TriggerNone {
			return fmt.Errorf("refill: kind %q takes no trigger, got %q", RefillNone, s.Refill.Trigger)
		}
		if s.PageTable.Kind != PTNone {
			return fmt.Errorf("refill: kind %q takes no page table, got %q", RefillNone, s.PageTable.Kind)
		}
		if s.UsesTLB() {
			return fmt.Errorf("refill: kind %q cannot fill a TLB; remove the tlb levels", RefillNone)
		}
		if c != (CostSpec{}) {
			return fmt.Errorf("refill: kind %q takes no costs", RefillNone)
		}
		return nil
	case RefillSoftware, RefillHardware, RefillPFSM:
	default:
		return fmt.Errorf("refill: unknown kind %q (have %s, %s, %s, %s)",
			s.Refill.Kind, RefillNone, RefillSoftware, RefillHardware, RefillPFSM)
	}

	switch s.Refill.Trigger {
	case TriggerTLBMiss:
		if !s.UsesTLB() {
			return fmt.Errorf("refill: trigger %q requires at least one TLB level", TriggerTLBMiss)
		}
	case TriggerCacheMiss:
		if s.UsesTLB() {
			return fmt.Errorf("refill: trigger %q is for TLB-less machines; remove the tlb levels", TriggerCacheMiss)
		}
	default:
		return fmt.Errorf("refill: unknown trigger %q (have %s, %s)", s.Refill.Trigger, TriggerTLBMiss, TriggerCacheMiss)
	}

	sw := s.Refill.Kind == RefillSoftware
	need := func(name string, v int) error {
		if v <= 0 {
			return fmt.Errorf("costs: %s must be positive for a %s %s walker", name, s.Refill.Kind, s.PageTable.Kind)
		}
		return nil
	}
	// The buildable (page table × refill kind) combinations, mirroring
	// mmu.Build's dispatch table.
	switch s.PageTable.Kind {
	case PTTwoTierBottomUp:
		if s.Refill.Kind == RefillPFSM {
			return fmt.Errorf("page_table: %q is walked by %s or %s refills, not %s",
				s.PageTable.Kind, RefillSoftware, RefillHardware, RefillPFSM)
		}
		if sw {
			if err := need("user_handler_instrs", c.UserHandlerInstrs); err != nil {
				return err
			}
			return need("root_handler_instrs", c.RootHandlerInstrs)
		}
		if err := need("walk_cycles", c.WalkCycles); err != nil {
			return err
		}
		return need("mapped_walk_cycles", c.MappedWalkCycles)
	case PTThreeTierBottomUp:
		if !sw {
			return fmt.Errorf("page_table: %q is walked bottom-up through the D-TLB by nested software handlers only", s.PageTable.Kind)
		}
		if err := need("user_handler_instrs", c.UserHandlerInstrs); err != nil {
			return err
		}
		if err := need("kernel_handler_instrs", c.KernelHandlerInstrs); err != nil {
			return err
		}
		return need("root_handler_instrs", c.RootHandlerInstrs)
	case PTTwoTierTopDown:
		if sw {
			return fmt.Errorf("page_table: %q is walked top-down in physical space by %s or %s refills only",
				s.PageTable.Kind, RefillHardware, RefillPFSM)
		}
		return need("walk_cycles", c.WalkCycles)
	case PTHashedInverted:
		if sw {
			return need("user_handler_instrs", c.UserHandlerInstrs)
		}
		return need("walk_cycles", c.WalkCycles)
	case PTClustered:
		if !sw {
			return fmt.Errorf("page_table: %q has a software handler only", s.PageTable.Kind)
		}
		return need("user_handler_instrs", c.UserHandlerInstrs)
	case PTDisjunctTwoTier:
		if s.Refill.Trigger != TriggerCacheMiss {
			return fmt.Errorf("page_table: %q is the no-TLB organization; its trigger must be %q", s.PageTable.Kind, TriggerCacheMiss)
		}
		if s.Refill.Kind == RefillPFSM {
			return fmt.Errorf("page_table: %q is walked by %s or %s refills, not %s",
				s.PageTable.Kind, RefillSoftware, RefillHardware, RefillPFSM)
		}
		if sw {
			if err := need("user_handler_instrs", c.UserHandlerInstrs); err != nil {
				return err
			}
			return need("root_handler_instrs", c.RootHandlerInstrs)
		}
		if err := need("walk_cycles", c.WalkCycles); err != nil {
			return err
		}
		return need("root_walk_cycles", c.RootWalkCycles)
	case PTNone:
		return fmt.Errorf("page_table: %q requires refill kind %q", PTNone, RefillNone)
	default:
		return fmt.Errorf("page_table: unknown kind %q", s.PageTable.Kind)
	}
}
