package machine

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/tlb"
)

// custom returns a valid non-bundled spec: the ultrix refill under a
// fresh name, mutated by fn.
func custom(t *testing.T, name string, fn func(*Spec)) *Spec {
	t.Helper()
	s, err := Lookup("ultrix")
	if err != nil {
		t.Fatal(err)
	}
	s.Name = name
	if fn != nil {
		fn(s)
	}
	return s
}

// TestBundledRoundTrip pins JSON marshal/unmarshal identity for every
// bundled spec: Canonical → Parse must reproduce the spec exactly, and
// re-serializing must reproduce the bytes exactly (the stability the
// result-cache key depends on).
func TestBundledRoundTrip(t *testing.T) {
	for _, s := range Bundled() {
		b, err := Canonical(s)
		if err != nil {
			t.Fatalf("%s: canonical: %v", s.Name, err)
		}
		back, err := Parse(b)
		if err != nil {
			t.Fatalf("%s: parse of own canonical form: %v", s.Name, err)
		}
		// Canonical normalizes an absent level list to [], the one
		// representation change it is allowed to make.
		want := *s
		if want.TLB.Levels == nil {
			want.TLB.Levels = []TLBLevel{}
		}
		if !reflect.DeepEqual(&want, back) {
			t.Errorf("%s: round trip drifted:\nhave %+v\ngot  %+v", s.Name, &want, back)
		}
		again, err := Canonical(back)
		if err != nil {
			t.Fatalf("%s: re-canonical: %v", s.Name, err)
		}
		if !bytes.Equal(b, again) {
			t.Errorf("%s: canonical serialization is not stable across a round trip", s.Name)
		}
	}
}

// TestValidateRejections is the rejection table: every way a spec can be
// inconsistent, with the diagnostic each should produce.
func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Spec)
		want   string
	}{
		{"empty-name", func(s *Spec) { s.Name = "" }, "no name"},
		{"bad-name", func(s *Spec) { s.Name = "Bad Name" }, "lowercase"},
		{"three-levels", func(s *Spec) {
			s.TLB.Levels = append(s.TLB.Levels, TLBLevel{Entries: 64, Replacement: "random"},
				TLBLevel{Entries: 64, Replacement: "random"})
		}, "at most 2"},
		{"zero-entries", func(s *Spec) { s.TLB.Levels[0].Entries = 0 }, "entries 0"},
		{"huge-entries", func(s *Spec) { s.TLB.Levels[0].Entries = maxTLBEntries + 1 }, "outside"},
		{"bad-policy", func(s *Spec) { s.TLB.Levels[0].Replacement = "mru" }, "unknown replacement policy"},
		{"l1-setassoc", func(s *Spec) { s.TLB.Levels[0].Assoc = 4 }, "fully associative"},
		{"negative-assoc", func(s *Spec) { s.TLB.Levels[0].Assoc = -1 }, "non-negative"},
		{"protected-overflow", func(s *Spec) { s.TLB.Levels[0].ProtectedSlots = 128 }, "protected slots"},
		{"negative-protected", func(s *Spec) { s.TLB.Levels[0].ProtectedSlots = -1 }, "protected slots"},
		{"l1-latency", func(s *Spec) { s.TLB.Levels[0].HitLatency = 2 }, "hit latency must be 0"},
		{"l2-indivisible", func(s *Spec) {
			s.TLB.Levels = append(s.TLB.Levels, TLBLevel{Entries: 100, Assoc: 3, Replacement: "random"})
		}, "not divisible"},
		{"l2-protected", func(s *Spec) {
			s.TLB.Levels = append(s.TLB.Levels, TLBLevel{Entries: 256, Replacement: "random", ProtectedSlots: 8})
		}, "level 1"},
		{"negative-cost", func(s *Spec) { s.Costs.WalkCycles = -1 }, "outside"},
		{"huge-cost", func(s *Spec) { s.Costs.UserHandlerInstrs = maxHandlerInstrs + 1 }, "outside"},
		{"unknown-kind", func(s *Spec) { s.Refill.Kind = "firmware" }, "unknown kind"},
		{"unknown-trigger", func(s *Spec) { s.Refill.Trigger = "page-fault" }, "unknown trigger"},
		{"tlbmiss-no-tlb", func(s *Spec) { s.TLB.Levels = nil }, "requires at least one TLB level"},
		{"cachemiss-with-tlb", func(s *Spec) { s.Refill.Trigger = TriggerCacheMiss }, "TLB-less"},
		{"missing-user-cost", func(s *Spec) { s.Costs.UserHandlerInstrs = 0 }, "must be positive"},
		{"missing-root-cost", func(s *Spec) { s.Costs.RootHandlerInstrs = 0 }, "must be positive"},
		{"pfsm-bottomup", func(s *Spec) {
			s.Refill.Kind = RefillPFSM
			s.Costs = CostSpec{WalkCycles: 7}
		}, "not pfsm"},
		{"sw-topdown", func(s *Spec) { s.PageTable.Kind = PTTwoTierTopDown }, "top-down"},
		{"hw-three-tier", func(s *Spec) {
			s.Refill.Kind = RefillHardware
			s.PageTable.Kind = PTThreeTierBottomUp
			s.Costs = CostSpec{WalkCycles: 7}
		}, "software handlers only"},
		{"hw-clustered", func(s *Spec) {
			s.Refill.Kind = RefillHardware
			s.PageTable.Kind = PTClustered
			s.Costs = CostSpec{WalkCycles: 7}
		}, "software handler only"},
		{"disjunct-tlb-trigger", func(s *Spec) { s.PageTable.Kind = PTDisjunctTwoTier }, "no-TLB"},
		{"pt-none-with-refill", func(s *Spec) {
			s.PageTable.Kind = PTNone
			s.Costs = CostSpec{}
		}, "requires refill kind"},
		{"unknown-pt", func(s *Spec) { s.PageTable.Kind = "b-tree" }, "unknown kind"},
		{"none-with-trigger", func(s *Spec) {
			s.Refill = RefillSpec{Kind: RefillNone, Trigger: TriggerTLBMiss}
			s.PageTable.Kind = PTNone
			s.TLB.Levels = nil
			s.Costs = CostSpec{}
		}, "takes no trigger"},
		{"none-with-tlb", func(s *Spec) {
			s.Refill = RefillSpec{Kind: RefillNone}
			s.PageTable.Kind = PTNone
			s.Costs = CostSpec{}
		}, "cannot fill a TLB"},
		{"none-with-costs", func(s *Spec) {
			s.Refill = RefillSpec{Kind: RefillNone}
			s.PageTable.Kind = PTNone
			s.TLB.Levels = nil
			s.Costs = CostSpec{UserHandlerInstrs: 10}
		}, "takes no costs"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			s := custom(t, "reject-me", tc.mutate)
			err := s.Validate()
			if err == nil {
				t.Fatalf("Validate accepted %+v", s)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestRegistryLookup pins name resolution: bundled names resolve, the
// unknown-name error enumerates what is registered, and the returned
// spec is a private copy.
func TestRegistryLookup(t *testing.T) {
	if _, err := Lookup("ultrix"); err != nil {
		t.Fatal(err)
	}
	_, err := Lookup("nonesuch")
	if err == nil {
		t.Fatal("unknown name accepted")
	}
	for _, want := range []string{"nonesuch", "ultrix", "l2tlb"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("lookup error %q does not mention %q", err, want)
		}
	}
	a, _ := Lookup("l2tlb")
	a.TLB.Levels[1].Entries = 1
	b, _ := Lookup("l2tlb")
	if b.TLB.Levels[1].Entries == 1 {
		t.Fatal("mutating a looked-up spec leaked into the registry")
	}
}

// TestRegister pins run-time registration: invalid specs and bundled
// names are refused; a registered spec becomes resolvable and is copied
// in, not aliased.
func TestRegister(t *testing.T) {
	if err := Register(custom(t, "Bad Name", nil)); err == nil {
		t.Fatal("invalid spec registered")
	}
	if err := Register(custom(t, "ultrix", nil)); err == nil {
		t.Fatal("bundled name overwritten")
	}
	s := custom(t, "test-register", func(s *Spec) { s.Description = "test machine" })
	if err := Register(s); err != nil {
		t.Fatal(err)
	}
	s.Costs.UserHandlerInstrs = 99 // must not reach the registry
	got, err := Lookup("test-register")
	if err != nil {
		t.Fatal(err)
	}
	if got.Costs.UserHandlerInstrs == 99 {
		t.Fatal("registered spec aliased, not copied")
	}
	found := false
	for _, n := range Names() {
		if n == "test-register" {
			found = true
		}
	}
	if !found {
		t.Fatalf("Names() = %v misses the registered machine", Names())
	}
}

// TestParseRejects pins the strict parser: unknown fields, trailing
// data, malformed JSON, and invalid specs are all refused.
func TestParseRejects(t *testing.T) {
	valid, err := Canonical(bundled()[0])
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"unknown-field", []byte(`{"name":"x","walker":"software"}`)},
		{"trailing-data", append(append([]byte{}, valid...), []byte("{}")...)},
		{"malformed", []byte(`{"name":`)},
		{"invalid-spec", []byte(`{"name":"x"}`)},
	}
	for _, tc := range cases {
		if _, err := Parse(tc.data); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if _, err := Parse(valid); err != nil {
		t.Errorf("canonical bytes rejected: %v", err)
	}
}

// TestLoad pins the file loader's error context and success path.
func TestLoad(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
	path := filepath.Join(t.TempDir(), "m.json")
	b, err := Canonical(bundled()[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != bundled()[0].Name {
		t.Fatalf("loaded %q", s.Name)
	}
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil || !strings.Contains(err.Error(), path) {
		t.Fatalf("load error %v does not name the file", err)
	}
}

// TestRefillEquivalent pins the oracle's dispatch relation: l2tlb shares
// ultrix's refill despite the different TLB hierarchy; distinct refills
// differ.
func TestRefillEquivalent(t *testing.T) {
	ultrix, _ := Lookup("ultrix")
	l2, _ := Lookup("l2tlb")
	mach, _ := Lookup("mach")
	if !l2.RefillEquivalent(ultrix) {
		t.Error("l2tlb should be refill-equivalent to ultrix")
	}
	if ultrix.RefillEquivalent(mach) {
		t.Error("ultrix should not be refill-equivalent to mach")
	}
}

// TestParsePolicy pins the policy-name mapping.
func TestParsePolicy(t *testing.T) {
	for name, want := range map[string]tlb.Policy{"random": tlb.Random, "lru": tlb.LRU, "fifo": tlb.FIFO} {
		got, err := ParsePolicy(name)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParsePolicy("mru"); err == nil {
		t.Error("unknown policy accepted")
	}
}

// TestBundledValidate double-checks every bundled spec validates (init
// panics on failure, but a direct call gives a readable report).
func TestBundledValidate(t *testing.T) {
	for _, s := range Bundled() {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}
