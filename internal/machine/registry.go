package machine

import (
	"fmt"
	"sort"
	"sync"
)

// paperTLB is the paper's Table 1 first-level TLB: 128 entries per side,
// fully associative, random replacement.
func paperTLB(protected int) TLBSpec {
	return TLBSpec{
		ASIDTagged: true,
		Levels: []TLBLevel{
			{Entries: 128, Assoc: 0, Replacement: "random", ProtectedSlots: protected},
		},
	}
}

// bundled returns the built-in machine specs in presentation order: the
// paper's Table 1 organizations, the §4.2/§5 hybrids, and the two-level-
// TLB extension. Every spec mirrors the corresponding hardwired
// constructor's parameters exactly — the bit-identity tests in
// internal/sim pin that.
func bundled() []*Spec {
	return []*Spec{
		{
			Name:        "ultrix",
			Description: "DEC Ultrix on MIPS: software-managed partitioned TLB, two-tier table walked bottom-up",
			TLB:         paperTLB(16),
			Refill:      RefillSpec{Kind: RefillSoftware, Trigger: TriggerTLBMiss},
			PageTable:   PageTableSpec{Kind: PTTwoTierBottomUp},
			Costs:       CostSpec{UserHandlerInstrs: 10, RootHandlerInstrs: 20},
		},
		{
			Name:        "mach",
			Description: "Mach on MIPS: software-managed partitioned TLB, three-tier table with a 500-instruction root path",
			TLB:         paperTLB(16),
			Refill:      RefillSpec{Kind: RefillSoftware, Trigger: TriggerTLBMiss},
			PageTable:   PageTableSpec{Kind: PTThreeTierBottomUp},
			Costs:       CostSpec{UserHandlerInstrs: 10, KernelHandlerInstrs: 20, RootHandlerInstrs: 500, RootAdminLoads: 10},
		},
		{
			Name:        "intel",
			Description: "classical x86: hardware-walked two-tier table, untagged TLB flushed on context switch",
			TLB: TLBSpec{
				ASIDTagged: false,
				Levels: []TLBLevel{
					{Entries: 128, Assoc: 0, Replacement: "random"},
				},
			},
			Refill:    RefillSpec{Kind: RefillHardware, Trigger: TriggerTLBMiss},
			PageTable: PageTableSpec{Kind: PTTwoTierTopDown},
			Costs:     CostSpec{WalkCycles: 7},
		},
		{
			Name:        "pa-risc",
			Description: "HP PA-RISC: software-managed unpartitioned TLB, hashed inverted table",
			TLB:         paperTLB(0),
			Refill:      RefillSpec{Kind: RefillSoftware, Trigger: TriggerTLBMiss},
			PageTable:   PageTableSpec{Kind: PTHashedInverted},
			Costs:       CostSpec{UserHandlerInstrs: 20},
		},
		{
			Name:        "notlb",
			Description: "softvm/VMP: no TLB, software translation on every user-level L2 cache miss",
			TLB:         TLBSpec{ASIDTagged: true},
			Refill:      RefillSpec{Kind: RefillSoftware, Trigger: TriggerCacheMiss},
			PageTable:   PageTableSpec{Kind: PTDisjunctTwoTier},
			Costs:       CostSpec{UserHandlerInstrs: 10, RootHandlerInstrs: 20},
		},
		{
			Name:        "base",
			Description: "no VM system at all: the paper's reference machine",
			TLB:         TLBSpec{ASIDTagged: true},
			Refill:      RefillSpec{Kind: RefillNone},
			PageTable:   PageTableSpec{Kind: PTNone},
		},
		{
			Name:        "hw-mips",
			Description: "hybrid: MIPS-style bottom-up table walked by a hardware state machine",
			TLB:         paperTLB(16),
			Refill:      RefillSpec{Kind: RefillHardware, Trigger: TriggerTLBMiss},
			PageTable:   PageTableSpec{Kind: PTTwoTierBottomUp},
			Costs:       CostSpec{WalkCycles: 7, MappedWalkCycles: 4},
		},
		{
			Name:        "powerpc",
			Description: "PowerPC: hardware-walked hashed inverted table, tagged TLB",
			TLB:         paperTLB(0),
			Refill:      RefillSpec{Kind: RefillHardware, Trigger: TriggerTLBMiss},
			PageTable:   PageTableSpec{Kind: PTHashedInverted},
			Costs:       CostSpec{WalkCycles: 7},
		},
		{
			Name:        "spur",
			Description: "SPUR: no TLB, hardware walk of the disjunct table on user-level L2 misses",
			TLB:         TLBSpec{ASIDTagged: true},
			Refill:      RefillSpec{Kind: RefillHardware, Trigger: TriggerCacheMiss},
			PageTable:   PageTableSpec{Kind: PTDisjunctTwoTier},
			Costs:       CostSpec{WalkCycles: 7, RootWalkCycles: 4},
		},
		{
			Name:        "pfsm-hier",
			Description: "programmable FSM walking an x86-style two-tier physical table",
			TLB:         paperTLB(0),
			Refill:      RefillSpec{Kind: RefillPFSM, Trigger: TriggerTLBMiss},
			PageTable:   PageTableSpec{Kind: PTTwoTierTopDown},
			Costs:       CostSpec{WalkCycles: 7},
		},
		{
			Name:        "pfsm-hashed",
			Description: "programmable FSM walking a PA-RISC-style hashed inverted table",
			TLB:         paperTLB(0),
			Refill:      RefillSpec{Kind: RefillPFSM, Trigger: TriggerTLBMiss},
			PageTable:   PageTableSpec{Kind: PTHashedInverted},
			Costs:       CostSpec{WalkCycles: 7},
		},
		{
			Name:        "clustered",
			Description: "Talluri & Hill clustered hashed table on a software-managed TLB",
			TLB:         paperTLB(0),
			Refill:      RefillSpec{Kind: RefillSoftware, Trigger: TriggerTLBMiss},
			PageTable:   PageTableSpec{Kind: PTClustered},
			Costs:       CostSpec{UserHandlerInstrs: 20},
		},
		{
			Name:        "l2tlb",
			Description: "two-level TLB: ULTRIX refill behind a 1024-entry 4-way set-associative unified L2 TLB",
			TLB: TLBSpec{
				ASIDTagged: true,
				Levels: []TLBLevel{
					{Entries: 128, Assoc: 0, Replacement: "random", ProtectedSlots: 16},
					{Entries: 1024, Assoc: 4, Replacement: "random", HitLatency: 2},
				},
			},
			Refill:    RefillSpec{Kind: RefillSoftware, Trigger: TriggerTLBMiss},
			PageTable: PageTableSpec{Kind: PTTwoTierBottomUp},
			Costs:     CostSpec{UserHandlerInstrs: 10, RootHandlerInstrs: 20},
		},
	}
}

// registry holds every known spec by name. Bundled specs are installed at
// package init; Register adds user-defined ones at run time (the CLIs
// register a -machine file's spec so downstream lookups by name resolve).
var registry = struct {
	sync.RWMutex
	specs map[string]*Spec
}{specs: map[string]*Spec{}}

// bundledNames preserves the curated presentation order for Bundled().
var bundledNames []string

func init() {
	for _, s := range bundled() {
		if err := s.Validate(); err != nil {
			panic(fmt.Sprintf("machine: bundled spec %q invalid: %v", s.Name, err))
		}
		registry.specs[s.Name] = s
		bundledNames = append(bundledNames, s.Name)
	}
}

// clone returns an independent copy of s, so callers may mutate lookups
// freely without corrupting the registry.
func clone(s *Spec) *Spec {
	c := *s
	c.TLB.Levels = append([]TLBLevel(nil), s.TLB.Levels...)
	return &c
}

// Names returns every registered machine name, sorted.
func Names() []string {
	registry.RLock()
	defer registry.RUnlock()
	out := make([]string, 0, len(registry.specs))
	for name := range registry.specs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Bundled returns the built-in specs in presentation order: the paper's
// Table 1 organizations first, then the hybrids, then the two-level-TLB
// extension.
func Bundled() []*Spec {
	registry.RLock()
	defer registry.RUnlock()
	out := make([]*Spec, 0, len(bundledNames))
	for _, name := range bundledNames {
		out = append(out, clone(registry.specs[name]))
	}
	return out
}

// Lookup resolves a registered machine name to a copy of its spec. An
// unknown name's error enumerates what is registered, so a CLI typo
// surfaces the valid values.
func Lookup(name string) (*Spec, error) {
	registry.RLock()
	s, ok := registry.specs[name]
	registry.RUnlock()
	if !ok {
		return nil, fmt.Errorf("machine: unknown machine %q (registered: %v)", name, Names())
	}
	return clone(s), nil
}

// Register validates and installs a spec under its name, replacing any
// previous registration of that name except a bundled one: the bundled
// specs are the pinned ground truth the oracle and golden results build
// on, so shadowing them is an error.
func Register(s *Spec) error {
	if err := s.Validate(); err != nil {
		return err
	}
	for _, name := range bundledNames {
		if name == s.Name {
			return fmt.Errorf("machine: %q is a bundled machine and cannot be replaced", s.Name)
		}
	}
	registry.Lock()
	registry.specs[s.Name] = clone(s)
	registry.Unlock()
	return nil
}
