// Package report formats simulation results as aligned text tables, CSV,
// and ASCII line charts — the textual equivalents of the paper's figures.
package report

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted values: each value is rendered with
// %v except float64, which uses %.5f.
func (t *Table) AddRowf(vals ...interface{}) {
	cells := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case float64:
			cells[i] = fmt.Sprintf("%.5f", x)
		default:
			cells[i] = fmt.Sprintf("%v", x)
		}
	}
	t.AddRow(cells...)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (cells containing
// commas or quotes are quoted).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteString(`"` + strings.ReplaceAll(c, `"`, `""`) + `"`)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Series is one named line of (x, y) points for a chart.
type Series struct {
	Name   string
	Points []Point
}

// Point is one chart sample.
type Point struct {
	X, Y float64
}

// Chart renders named series as an ASCII line chart with a log2 x-axis
// label row — the shape of the paper's VMCPI-vs-cache-size figures.
type Chart struct {
	Title  string
	YLabel string
	XLabel string
	// Height in character rows for the plot area (default 16).
	Height int
	Series []Series
}

// AddSeries appends a series.
func (c *Chart) AddSeries(name string, pts []Point) {
	c.Series = append(c.Series, Series{Name: name, Points: pts})
}

// String renders the chart. Each series is drawn with its own marker
// rune; a legend follows the plot.
func (c *Chart) String() string {
	height := c.Height
	if height <= 0 {
		height = 16
	}
	markers := []byte("ox+*#@%&$~")
	// Collect the x positions (union, sorted) and y range. The y-axis
	// always includes zero, extends up to the largest positive value,
	// and — unlike the original figures, which never go below the axis —
	// extends *down* to the smallest negative value, so series like
	// "VMCPI delta versus BASE" plot faithfully instead of silently
	// clamping to the bottom row.
	xsSet := map[float64]struct{}{}
	ymin, ymax := 0.0, 0.0
	for _, s := range c.Series {
		for _, p := range s.Points {
			xsSet[p.X] = struct{}{}
			if p.Y > ymax {
				ymax = p.Y
			}
			if p.Y < ymin {
				ymin = p.Y
			}
		}
	}
	if len(xsSet) == 0 {
		return c.Title + " (no data)\n"
	}
	xs := make([]float64, 0, len(xsSet))
	for x := range xsSet {
		xs = append(xs, x)
	}
	sort.Float64s(xs)
	span := ymax - ymin
	if span == 0 {
		span = 1
	}
	cols := len(xs)
	colW := 6
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", cols*colW))
	}
	// Column lookup is a map, not a linear scan: charts over large
	// sweeps have hundreds of x positions, and the old
	// O(series × points × columns) scan dominated rendering.
	colOf := make(map[float64]int, len(xs))
	for i, v := range xs {
		colOf[v] = i*colW + colW/2
	}
	for si, s := range c.Series {
		m := markers[si%len(markers)]
		for _, p := range s.Points {
			row := height - 1 - int(math.Round((p.Y-ymin)/span*float64(height-1)))
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			grid[row][colOf[p.X]] = m
		}
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	for r, line := range grid {
		y := ymin + span*float64(height-1-r)/float64(height-1)
		fmt.Fprintf(&b, "%9.4f |%s\n", y, string(line))
	}
	b.WriteString(strings.Repeat(" ", 10) + "+" + strings.Repeat("-", cols*colW) + "\n")
	b.WriteString(strings.Repeat(" ", 11))
	for _, x := range xs {
		fmt.Fprintf(&b, "%-*s", colW, compactNum(x))
	}
	b.WriteByte('\n')
	if c.XLabel != "" || c.YLabel != "" {
		fmt.Fprintf(&b, "          x: %s   y: %s\n", c.XLabel, c.YLabel)
	}
	for si, s := range c.Series {
		fmt.Fprintf(&b, "          %c %s\n", markers[si%len(markers)], s.Name)
	}
	return b.String()
}

// compactNum renders sizes compactly (1024 -> "1K", 2097152 -> "2M").
func compactNum(v float64) string {
	switch {
	case v >= 1<<20 && math.Mod(v, 1<<20) == 0:
		return fmt.Sprintf("%.0fM", v/(1<<20))
	case v >= 1<<10 && math.Mod(v, 1<<10) == 0:
		return fmt.Sprintf("%.0fK", v/(1<<10))
	default:
		return fmt.Sprintf("%g", v)
	}
}
