package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("vm", "vmcpi")
	tb.AddRow("ultrix", "0.012")
	tb.AddRow("pa-risc", "0.009")
	s := tb.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), s)
	}
	if !strings.HasPrefix(lines[0], "vm") || !strings.Contains(lines[0], "vmcpi") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "--") {
		t.Fatalf("separator = %q", lines[1])
	}
	// All rows equal width.
	if len(lines[2]) != len(lines[3]) {
		t.Fatalf("rows unaligned: %q vs %q", lines[2], lines[3])
	}
}

func TestTableShortRowPadded(t *testing.T) {
	tb := NewTable("a", "b", "c")
	tb.AddRow("x")
	if !strings.Contains(tb.String(), "x") {
		t.Fatal("short row lost")
	}
}

func TestTableAddRowf(t *testing.T) {
	tb := NewTable("name", "val", "n")
	tb.AddRowf("x", 0.123456789, 42)
	s := tb.String()
	if !strings.Contains(s, "0.12346") {
		t.Fatalf("float not formatted to 5 places: %s", s)
	}
	if !strings.Contains(s, "42") {
		t.Fatalf("int missing: %s", s)
	}
}

func TestCSV(t *testing.T) {
	tb := NewTable("a", "b")
	tb.AddRow("1", "x,y")
	tb.AddRow("2", `quote"inside`)
	csv := tb.CSV()
	lines := strings.Split(strings.TrimRight(csv, "\n"), "\n")
	if lines[0] != "a,b" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != `1,"x,y"` {
		t.Fatalf("quoted cell = %q", lines[1])
	}
	if lines[2] != `2,"quote""inside"` {
		t.Fatalf("escaped quote = %q", lines[2])
	}
}

func TestChartRendersAllSeries(t *testing.T) {
	c := &Chart{Title: "VMCPI vs L1", XLabel: "L1 bytes", YLabel: "VMCPI"}
	c.AddSeries("ultrix", []Point{{1024, 0.05}, {2048, 0.04}, {4096, 0.02}})
	c.AddSeries("intel", []Point{{1024, 0.03}, {2048, 0.02}, {4096, 0.01}})
	s := c.String()
	if !strings.Contains(s, "VMCPI vs L1") {
		t.Fatal("title missing")
	}
	if !strings.Contains(s, "o ultrix") || !strings.Contains(s, "x intel") {
		t.Fatalf("legend missing:\n%s", s)
	}
	if !strings.Contains(s, "1K") || !strings.Contains(s, "4K") {
		t.Fatalf("x-axis labels missing:\n%s", s)
	}
	if !strings.Contains(s, "o") || !strings.Contains(s, "x") {
		t.Fatal("markers missing from plot area")
	}
}

func TestChartEmpty(t *testing.T) {
	c := &Chart{Title: "empty"}
	if !strings.Contains(c.String(), "no data") {
		t.Fatal("empty chart not handled")
	}
}

func TestChartAllZeroYs(t *testing.T) {
	c := &Chart{}
	c.AddSeries("flat", []Point{{1, 0}, {2, 0}})
	s := c.String() // must not divide by zero
	if !strings.Contains(s, "flat") {
		t.Fatal("flat series lost")
	}
}

func TestChartNegativeYsGolden(t *testing.T) {
	// Negative values used to clamp silently onto the bottom row while
	// the axis still claimed a 0 minimum. The y-range now extends below
	// zero; pin the exact rendering.
	c := &Chart{Title: "neg", Height: 5}
	c.AddSeries("delta", []Point{{1, -1}, {2, 0}, {3, 1}})
	want := strings.Join([]string{
		"neg",
		"   1.0000 |               o  ",
		"   0.5000 |                  ",
		"   0.0000 |         o        ",
		"  -0.5000 |                  ",
		"  -1.0000 |   o              ",
		"          +------------------",
		"           1     2     3     ",
		"          o delta",
		"",
	}, "\n")
	if got := c.String(); got != want {
		t.Fatalf("negative chart rendering changed:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestChartAllNegativeIncludesZero(t *testing.T) {
	// An all-negative series still anchors the axis at zero on top, so
	// the sign of the data is visible at a glance.
	c := &Chart{Height: 3}
	c.AddSeries("down", []Point{{1, -2}, {2, -4}})
	s := c.String()
	if !strings.Contains(s, "   0.0000 |") {
		t.Fatalf("zero line missing from all-negative chart:\n%s", s)
	}
	if !strings.Contains(s, "  -4.0000 |") {
		t.Fatalf("minimum label missing:\n%s", s)
	}
}

func TestChartNonNegativeAxisUnchanged(t *testing.T) {
	// Charts without negative values keep their historical 0-based axis:
	// the bottom row label is 0 and the top row is the max.
	c := &Chart{Height: 4}
	c.AddSeries("up", []Point{{1, 0.5}, {2, 1.5}})
	lines := strings.Split(c.String(), "\n")
	if !strings.HasPrefix(lines[0], "   1.5000 |") {
		t.Fatalf("top label = %q, want max", lines[0])
	}
	if !strings.HasPrefix(lines[3], "   0.0000 |") {
		t.Fatalf("bottom label = %q, want 0", lines[3])
	}
}

func TestCompactNum(t *testing.T) {
	cases := map[float64]string{
		1024:    "1K",
		2048:    "2K",
		1 << 20: "1M",
		4 << 20: "4M",
		100:     "100",
		1.5:     "1.5",
	}
	for in, want := range cases {
		if got := compactNum(in); got != want {
			t.Errorf("compactNum(%v) = %q, want %q", in, got, want)
		}
	}
}
