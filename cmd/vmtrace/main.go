// Command vmtrace generates a synthetic benchmark trace and prints its
// summary statistics — footprints, reference mix, and the hottest data
// pages — for validating workload models against the qualitative
// properties the paper describes.
//
// It also converts between trace formats: -i accepts classic binary,
// .vmtrc, or Dinero text (auto-detected), and -o writes either binary
// or the delta-encoded .vmtrc block format.
//
// With -follow, vmtrace tails a growing .vmtrc file — decoding each
// CRC-validated block as soon as it lands, the way the vmserved
// streaming endpoint ingests a live upload — and reports once the file
// stops growing for -follow-timeout.
//
// Usage:
//
//	vmtrace -bench vortex -n 500000
//	vmtrace -benches gcc,ijpeg -cores 4 -n 1000000 -o mc.vmtrc
//	vmtrace -list
//	vmtrace -convert -i gcc.din -o gcc.vmtrc
//	vmtrace -follow -i live.vmtrc
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	mmusim "repro"
	"repro/internal/atomicio"
	"repro/internal/version"
)

// tailReader reads from a file that may still be growing: at end of
// file it polls for more bytes, and only reports EOF once the file has
// not grown for the timeout. Each Read arms a fresh deadline, so the
// budget bounds idle time, not total stream length.
type tailReader struct {
	f       *os.File
	timeout time.Duration
}

func (t *tailReader) Read(p []byte) (int, error) {
	deadline := time.Now().Add(t.timeout)
	for {
		n, err := t.f.Read(p)
		if n > 0 || (err != nil && err != io.EOF) {
			return n, err
		}
		if time.Now().After(deadline) {
			return 0, io.EOF
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// followTrace tails path as a live .vmtrc stream, decoding blocks as
// they arrive with progress on stderr, and returns the accumulated
// trace once the stream completes (all declared references decoded) or
// goes quiet for timeout.
func followTrace(path string, timeout time.Duration) (*mmusim.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rd, err := mmusim.NewTraceStreamReader(&tailReader{f: f, timeout: timeout})
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "vmtrace: following %s: %q, %d refs declared\n", path, rd.Name(), rd.Len())
	tr := &mmusim.Trace{Name: rd.Name()}
	nextReport := 1 << 18
	for {
		chunk, err := rd.NextChunk()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		tr.Refs = append(tr.Refs, chunk...)
		if len(tr.Refs) >= nextReport {
			fmt.Fprintf(os.Stderr, "vmtrace: %d/%d refs decoded (%d bytes)\n",
				rd.Decoded(), rd.Len(), rd.BytesRead())
			nextReport = len(tr.Refs) + 1<<18
		}
	}
	if rd.Decoded() < rd.Len() {
		fmt.Fprintf(os.Stderr, "vmtrace: stream went quiet at %d of %d declared refs; reporting on what arrived\n",
			rd.Decoded(), rd.Len())
	}
	return tr, nil
}

func main() {
	var (
		bench    = flag.String("bench", "gcc", "benchmark")
		mpmix    = flag.String("benches", "", "comma list of benchmarks for a generated multicore/multiprogram trace (overrides -bench)")
		cores    = flag.Int("cores", 1, "core count for a -benches trace (reference i runs on core i mod cores)")
		quantum  = flag.Int("quantum", 50_000, "scheduling quantum in instructions for a -benches trace")
		n        = flag.Int("n", 500_000, "trace length in instructions")
		seed     = flag.Uint64("seed", 42, "deterministic seed")
		top      = flag.Int("top", 10, "hottest data pages to list")
		list     = flag.Bool("list", false, "list available benchmarks and exit")
		out      = flag.String("o", "", "write the trace to this file")
		in       = flag.String("i", "", "inspect an existing trace file instead of generating (format auto-detected)")
		convert  = flag.Bool("convert", false, "convert -i (or a generated trace) to -o and skip the stats report")
		format   = flag.String("format", "", "output format for -o: binary or vmtrc (default: by -o extension)")
		follow   = flag.Bool("follow", false, "with -i: tail a growing .vmtrc file, decoding blocks as they land")
		followTO = flag.Duration("follow-timeout", 2*time.Second, "with -follow: report once the file stops growing for this long")
		ver      = flag.Bool("version", false, "print the engine version and exit")
	)
	flag.Parse()
	if *ver {
		fmt.Println(version.String())
		return
	}

	if *list {
		for _, name := range mmusim.Benchmarks() {
			p, err := mmusim.BenchmarkProfile(name)
			if err != nil {
				fmt.Fprintln(os.Stderr, "vmtrace:", err)
				os.Exit(1)
			}
			fmt.Printf("%-10s %s\n", name, p.Description)
		}
		return
	}

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "vmtrace:", err)
		os.Exit(1)
	}
	var tr *mmusim.Trace
	switch {
	case *follow:
		if *in == "" {
			fail(fmt.Errorf("-follow requires -i (a .vmtrc file to tail)"))
		}
		var err error
		if tr, err = followTrace(*in, *followTO); err != nil {
			fail(err)
		}
		*bench = tr.Name
	case *in != "":
		var err error
		if tr, err = mmusim.OpenTraceFile(*in); err != nil {
			fail(err)
		}
		*bench = tr.Name
	default:
		var err error
		if *mpmix != "" {
			var benches []string
			for _, b := range strings.Split(*mpmix, ",") {
				benches = append(benches, strings.TrimSpace(b))
			}
			if tr, err = mmusim.Multicore(benches, *seed, *cores, *n, *quantum); err != nil {
				fail(err)
			}
			*bench = tr.Name
		} else if tr, err = mmusim.GenerateTrace(*bench, *seed, *n); err != nil {
			fail(err)
		}
	}
	if *convert && *out == "" {
		fail(fmt.Errorf("-convert requires -o"))
	}
	if *out != "" {
		outFormat := *format
		if outFormat == "" {
			if strings.HasSuffix(*out, ".vmtrc") {
				outFormat = "vmtrc"
			} else {
				outFormat = "binary"
			}
		}
		// Atomic write: a killed vmtrace never leaves a torn trace file.
		f, err := atomicio.Create(*out)
		if err != nil {
			fail(err)
		}
		switch outFormat {
		case "binary":
			err = mmusim.WriteTrace(f, tr)
		case "vmtrc":
			err = mmusim.WriteVMTRCTrace(f, tr)
		default:
			err = fmt.Errorf("unknown -format %q (want binary or vmtrc)", outFormat)
		}
		if err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Commit(); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %d-instruction trace to %s (%s format)\n", tr.Len(), *out, outFormat)
	}
	if *convert {
		return
	}
	st := tr.ComputeStats()
	fmt.Printf("%s: %s\n", *bench, st)
	tlbReach := 128 * 4096
	fmt.Printf("TLB reach (128 x 4KB) = %dKB; code %.1fx reach, data %.1fx reach\n",
		tlbReach/1024,
		float64(st.CodeBytes)/float64(tlbReach),
		float64(st.DataBytes)/float64(tlbReach))

	hist := tr.PageHistogram()
	if *top > len(hist) {
		*top = len(hist)
	}
	fmt.Printf("hottest %d data pages (of %d):\n", *top, len(hist))
	var total uint64
	for _, pc := range hist {
		total += pc.Count
	}
	for _, pc := range hist[:*top] {
		fmt.Printf("  vpn %#08x  %8d refs (%.2f%%)\n",
			pc.VPN, pc.Count, float64(pc.Count)/float64(total)*100)
	}
}
