// End-to-end smoke tests: build the four command binaries and run them
// the way a user would — tiny traces, real flags — asserting exit
// status and that the output parses.
package cmd_test

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// binDir holds the binaries built once in TestMain.
var binDir string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "vmtools")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	binDir = dir
	for _, tool := range []string{"vmsim", "vmtrace", "vmsweep", "vmexperiment"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(dir, tool), "./"+tool)
		cmd.Dir = "." // the cmd/ directory
		if out, err := cmd.CombinedOutput(); err != nil {
			fmt.Fprintf(os.Stderr, "building %s: %v\n%s", tool, err, out)
			os.Exit(1)
		}
	}
	os.Exit(m.Run())
}

// run executes a built tool and returns stdout, stderr, and exit code.
func run(t *testing.T, tool string, args ...string) (string, string, int) {
	t.Helper()
	cmd := exec.Command(filepath.Join(binDir, tool), args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	err := cmd.Run()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("%s %v: %v", tool, args, err)
		}
		code = ee.ExitCode()
	}
	return stdout.String(), stderr.String(), code
}

func TestVMSimText(t *testing.T) {
	out, errOut, code := run(t, "vmsim", "-vm", "ultrix", "-bench", "gcc", "-n", "4000", "-warmup", "0")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	for _, want := range []string{"MCPI", "VMCPI", "total CPI"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestVMSimJSON(t *testing.T) {
	out, errOut, code := run(t, "vmsim", "-vm", "mach", "-bench", "ijpeg", "-n", "4000", "-json")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	var res struct {
		VM         string  `json:"vm"`
		UserInstrs uint64  `json:"user_instructions"`
		MCPI       float64 `json:"mcpi"`
	}
	if err := json.Unmarshal([]byte(out), &res); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, out)
	}
	if res.VM != "mach" || res.UserInstrs == 0 || res.MCPI <= 0 {
		t.Fatalf("-json output has implausible fields: %+v\n%s", res, out)
	}
}

func TestVMSimCheckAndInvariants(t *testing.T) {
	out, errOut, code := run(t, "vmsim",
		"-vm", "intel", "-bench", "gcc", "-n", "4000", "-check", "-invariants")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "reference models agree") {
		t.Errorf("-check did not report agreement:\n%s", out)
	}
}

func TestVMSimRejectsUnknownVM(t *testing.T) {
	_, errOut, code := run(t, "vmsim", "-vm", "vax")
	if code == 0 {
		t.Fatal("unknown -vm accepted")
	}
	if !strings.Contains(errOut, "vax") {
		t.Errorf("stderr does not name the bad organization: %s", errOut)
	}
}

func TestVMTraceGenerateInspectRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.trc")
	out, errOut, code := run(t, "vmtrace", "-bench", "vortex", "-n", "4000", "-o", path)
	if code != 0 {
		t.Fatalf("generate: exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "instrs=4000") {
		t.Errorf("summary missing instruction count:\n%s", out)
	}
	out2, errOut, code := run(t, "vmtrace", "-i", path)
	if code != 0 {
		t.Fatalf("inspect: exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out2, "instrs=4000") {
		t.Errorf("inspection of the written trace disagrees:\n%s", out2)
	}
}

func TestVMTraceList(t *testing.T) {
	out, errOut, code := run(t, "vmtrace", "-list")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	for _, bench := range []string{"gcc", "vortex", "ijpeg"} {
		if !strings.Contains(out, bench) {
			t.Errorf("-list missing %q:\n%s", bench, out)
		}
	}
}

func TestVMSweepCSV(t *testing.T) {
	out, errOut, code := run(t, "vmsweep",
		"-bench", "gcc", "-n", "4000", "-vms", "ultrix,intel",
		"-l1", "32768", "-l2", "2097152", "-l1lines", "64", "-l2lines", "128")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	rows, err := csv.NewReader(strings.NewReader(out)).ReadAll()
	if err != nil {
		t.Fatalf("output is not CSV: %v\n%s", err, out)
	}
	if len(rows) != 3 { // header + one row per organization
		t.Fatalf("got %d CSV rows, want 3:\n%s", len(rows), out)
	}
	mcpiCol := -1
	for i, name := range rows[0] {
		if name == "mcpi" {
			mcpiCol = i
		}
	}
	if mcpiCol < 0 {
		t.Fatalf("no mcpi column in header %v", rows[0])
	}
	for _, row := range rows[1:] {
		if v, err := strconv.ParseFloat(row[mcpiCol], 64); err != nil || v <= 0 {
			t.Errorf("bad mcpi cell %q in row %v (err=%v)", row[mcpiCol], row, err)
		}
	}
}

func TestVMSweepJournalResumeByteIdentical(t *testing.T) {
	jdir := filepath.Join(t.TempDir(), "journal")
	args := []string{"-bench", "gcc", "-n", "4000", "-vms", "ultrix,intel,mach", "-l1", "16384,65536"}
	clean, errOut, code := run(t, "vmsweep", args...)
	if code != 0 {
		t.Fatalf("clean run: exit %d, stderr: %s", code, errOut)
	}
	journalled, errOut, code := run(t, "vmsweep", append(args, "-journal", jdir)...)
	if code != 0 {
		t.Fatalf("journalled run: exit %d, stderr: %s", code, errOut)
	}
	if journalled != clean {
		t.Fatalf("journalling changed the CSV output:\n%s\nvs\n%s", journalled, clean)
	}
	resumed, errOut, code := run(t, "vmsweep", append(args, "-journal", jdir, "-resume")...)
	if code != 0 {
		t.Fatalf("resumed run: exit %d, stderr: %s", code, errOut)
	}
	if resumed != clean {
		t.Fatalf("resumed CSV is not byte-identical to the uninterrupted run:\n%s\nvs\n%s", resumed, clean)
	}
	if !strings.Contains(errOut, "replayed from journal") {
		t.Errorf("resume did not report journal replays: %s", errOut)
	}
}

func TestVMSweepTimeoutFailuresExitThree(t *testing.T) {
	out, errOut, code := run(t, "vmsweep",
		"-bench", "gcc", "-n", "50000", "-vms", "ultrix", "-timeout", "1ns")
	if code != 3 {
		t.Fatalf("exit %d, want 3 (quarantined point failures), stderr: %s", code, errOut)
	}
	if !strings.Contains(errOut, "timeout=1") {
		t.Errorf("stderr missing per-category summary: %s", errOut)
	}
	// The CSV header (and nothing corrupt) is still emitted.
	if !strings.HasPrefix(out, "benchmark,vm,") {
		t.Errorf("stdout lost its CSV header:\n%s", out)
	}
}

func TestVMSweepResumeRequiresJournal(t *testing.T) {
	_, errOut, code := run(t, "vmsweep", "-resume")
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errOut, "-journal") {
		t.Errorf("stderr does not explain the missing flag: %s", errOut)
	}
}

func TestVMExperimentQuick(t *testing.T) {
	dir := t.TempDir()
	out, errOut, code := run(t, "vmexperiment",
		"-quick", "-n", "20000", "-csv", dir, "tab1", "fig7")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	for _, want := range []string{"=== tab1", "=== fig7"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	for _, id := range []string{"tab1", "fig7"} {
		if _, err := os.Stat(filepath.Join(dir, id+".csv")); err != nil {
			t.Errorf("expected CSV for %s: %v", id, err)
		}
	}
}

func TestVMExperimentUsageOnNoArgs(t *testing.T) {
	_, _, code := run(t, "vmexperiment")
	if code != 2 {
		t.Fatalf("no-args exit = %d, want 2 (usage)", code)
	}
}
