// End-to-end smoke tests: build the four command binaries and run them
// the way a user would — tiny traces, real flags — asserting exit
// status and that the output parses.
package cmd_test

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// binDir holds the binaries built once in TestMain.
var binDir string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "vmtools")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	binDir = dir
	for _, tool := range []string{"vmsim", "vmtrace", "vmsweep", "vmexperiment", "vmserved"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(dir, tool), "./"+tool)
		cmd.Dir = "." // the cmd/ directory
		if out, err := cmd.CombinedOutput(); err != nil {
			fmt.Fprintf(os.Stderr, "building %s: %v\n%s", tool, err, out)
			os.Exit(1)
		}
	}
	os.Exit(m.Run())
}

// run executes a built tool and returns stdout, stderr, and exit code.
func run(t *testing.T, tool string, args ...string) (string, string, int) {
	t.Helper()
	cmd := exec.Command(filepath.Join(binDir, tool), args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	err := cmd.Run()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("%s %v: %v", tool, args, err)
		}
		code = ee.ExitCode()
	}
	return stdout.String(), stderr.String(), code
}

func TestVMSimText(t *testing.T) {
	out, errOut, code := run(t, "vmsim", "-vm", "ultrix", "-bench", "gcc", "-n", "4000", "-warmup", "0")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	for _, want := range []string{"MCPI", "VMCPI", "total CPI"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestVMSimJSON(t *testing.T) {
	out, errOut, code := run(t, "vmsim", "-vm", "mach", "-bench", "ijpeg", "-n", "4000", "-json")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	var res struct {
		VM         string  `json:"vm"`
		UserInstrs uint64  `json:"user_instructions"`
		MCPI       float64 `json:"mcpi"`
	}
	if err := json.Unmarshal([]byte(out), &res); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, out)
	}
	if res.VM != "mach" || res.UserInstrs == 0 || res.MCPI <= 0 {
		t.Fatalf("-json output has implausible fields: %+v\n%s", res, out)
	}
}

func TestVMSimCheckAndInvariants(t *testing.T) {
	out, errOut, code := run(t, "vmsim",
		"-vm", "intel", "-bench", "gcc", "-n", "4000", "-check", "-invariants")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "reference models agree") {
		t.Errorf("-check did not report agreement:\n%s", out)
	}
}

func TestVMSimRejectsUnknownVM(t *testing.T) {
	_, errOut, code := run(t, "vmsim", "-vm", "vax")
	if code == 0 {
		t.Fatal("unknown -vm accepted")
	}
	if !strings.Contains(errOut, "vax") {
		t.Errorf("stderr does not name the bad organization: %s", errOut)
	}
}

func TestVMSimListVMs(t *testing.T) {
	out, errOut, code := run(t, "vmsim", "-list-vms")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	for _, vm := range []string{"ultrix", "mach", "intel", "pa-risc", "l2tlb", "pfsm-hier"} {
		if !strings.Contains(out, vm) {
			t.Errorf("-list-vms missing %q:\n%s", vm, out)
		}
	}
}

// TestVMSimMachineFileMatchesVMName: running from a bundled spec file
// must be indistinguishable from naming the same machine with -vm.
func TestVMSimMachineFileMatchesVMName(t *testing.T) {
	args := []string{"-bench", "gcc", "-n", "4000", "-json"}
	byName, errOut, code := run(t, "vmsim", append([]string{"-vm", "ultrix"}, args...)...)
	if code != 0 {
		t.Fatalf("-vm run: exit %d, stderr: %s", code, errOut)
	}
	byFile, errOut, code := run(t, "vmsim",
		append([]string{"-machine", "../machines/ultrix.json"}, args...)...)
	if code != 0 {
		t.Fatalf("-machine run: exit %d, stderr: %s", code, errOut)
	}
	if byFile != byName {
		t.Fatalf("-machine output differs from -vm:\n--- -vm ---\n%s--- -machine ---\n%s", byName, byFile)
	}
}

func TestVMSimMachineAndVMMutuallyExclusive(t *testing.T) {
	_, errOut, code := run(t, "vmsim",
		"-machine", "../machines/ultrix.json", "-vm", "mach", "-n", "2000")
	if code != 1 {
		t.Fatalf("exit %d, want 1, stderr: %s", code, errOut)
	}
	if !strings.Contains(errOut, "mutually exclusive") {
		t.Errorf("stderr does not explain the conflict: %s", errOut)
	}
}

// TestVMSimL2TLB: the bundled two-level-TLB machine runs end to end,
// with -check exercising its naive reference model.
func TestVMSimL2TLB(t *testing.T) {
	out, errOut, code := run(t, "vmsim",
		"-vm", "l2tlb", "-bench", "gcc", "-n", "4000", "-check")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "reference models agree") {
		t.Errorf("-check did not report agreement:\n%s", out)
	}
}

func TestVMSweepMachineFile(t *testing.T) {
	out, errOut, code := run(t, "vmsweep",
		"-machine", "../machines/l2tlb.json",
		"-bench", "gcc", "-n", "4000", "-tlb2", "256,512")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	rows, err := csv.NewReader(strings.NewReader(out)).ReadAll()
	if err != nil {
		t.Fatalf("output is not CSV: %v\n%s", err, out)
	}
	if len(rows) != 3 { // header + one row per L2 TLB size
		t.Fatalf("got %d CSV rows, want 3:\n%s", len(rows), out)
	}
	for _, row := range rows[1:] {
		if row[1] != "l2tlb" {
			t.Errorf("vm column = %q, want l2tlb", row[1])
		}
	}
}

func TestVMTraceGenerateInspectRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.trc")
	out, errOut, code := run(t, "vmtrace", "-bench", "vortex", "-n", "4000", "-o", path)
	if code != 0 {
		t.Fatalf("generate: exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "instrs=4000") {
		t.Errorf("summary missing instruction count:\n%s", out)
	}
	out2, errOut, code := run(t, "vmtrace", "-i", path)
	if code != 0 {
		t.Fatalf("inspect: exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out2, "instrs=4000") {
		t.Errorf("inspection of the written trace disagrees:\n%s", out2)
	}
}

func TestVMTraceList(t *testing.T) {
	out, errOut, code := run(t, "vmtrace", "-list")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	for _, bench := range []string{"gcc", "vortex", "ijpeg"} {
		if !strings.Contains(out, bench) {
			t.Errorf("-list missing %q:\n%s", bench, out)
		}
	}
}

func TestVMSweepCSV(t *testing.T) {
	out, errOut, code := run(t, "vmsweep",
		"-bench", "gcc", "-n", "4000", "-vms", "ultrix,intel",
		"-l1", "32768", "-l2", "2097152", "-l1lines", "64", "-l2lines", "128")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	rows, err := csv.NewReader(strings.NewReader(out)).ReadAll()
	if err != nil {
		t.Fatalf("output is not CSV: %v\n%s", err, out)
	}
	if len(rows) != 3 { // header + one row per organization
		t.Fatalf("got %d CSV rows, want 3:\n%s", len(rows), out)
	}
	mcpiCol := -1
	for i, name := range rows[0] {
		if name == "mcpi" {
			mcpiCol = i
		}
	}
	if mcpiCol < 0 {
		t.Fatalf("no mcpi column in header %v", rows[0])
	}
	for _, row := range rows[1:] {
		if v, err := strconv.ParseFloat(row[mcpiCol], 64); err != nil || v <= 0 {
			t.Errorf("bad mcpi cell %q in row %v (err=%v)", row[mcpiCol], row, err)
		}
	}
}

func TestVMSweepJournalResumeByteIdentical(t *testing.T) {
	jdir := filepath.Join(t.TempDir(), "journal")
	args := []string{"-bench", "gcc", "-n", "4000", "-vms", "ultrix,intel,mach", "-l1", "16384,65536"}
	clean, errOut, code := run(t, "vmsweep", args...)
	if code != 0 {
		t.Fatalf("clean run: exit %d, stderr: %s", code, errOut)
	}
	journalled, errOut, code := run(t, "vmsweep", append(args, "-journal", jdir)...)
	if code != 0 {
		t.Fatalf("journalled run: exit %d, stderr: %s", code, errOut)
	}
	if journalled != clean {
		t.Fatalf("journalling changed the CSV output:\n%s\nvs\n%s", journalled, clean)
	}
	resumed, errOut, code := run(t, "vmsweep", append(args, "-journal", jdir, "-resume")...)
	if code != 0 {
		t.Fatalf("resumed run: exit %d, stderr: %s", code, errOut)
	}
	if resumed != clean {
		t.Fatalf("resumed CSV is not byte-identical to the uninterrupted run:\n%s\nvs\n%s", resumed, clean)
	}
	if !strings.Contains(errOut, "replayed from journal") {
		t.Errorf("resume did not report journal replays: %s", errOut)
	}
}

func TestVMSweepTimeoutFailuresExitThree(t *testing.T) {
	out, errOut, code := run(t, "vmsweep",
		"-bench", "gcc", "-n", "50000", "-vms", "ultrix", "-timeout", "1ns")
	if code != 3 {
		t.Fatalf("exit %d, want 3 (quarantined point failures), stderr: %s", code, errOut)
	}
	if !strings.Contains(errOut, "timeout=1") {
		t.Errorf("stderr missing per-category summary: %s", errOut)
	}
	// The CSV header (and nothing corrupt) is still emitted.
	if !strings.HasPrefix(out, "benchmark,vm,") {
		t.Errorf("stdout lost its CSV header:\n%s", out)
	}
}

func TestVMSweepResumeRequiresJournal(t *testing.T) {
	_, errOut, code := run(t, "vmsweep", "-resume")
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errOut, "-journal") {
		t.Errorf("stderr does not explain the missing flag: %s", errOut)
	}
}

func TestVMSimTimelineDeterministic(t *testing.T) {
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a.csv"), filepath.Join(dir, "b.csv")
	args := []string{"-vm", "mach", "-bench", "gcc", "-n", "20000", "-warmup", "4000", "-sample", "3000"}
	for _, path := range []string{a, b} {
		_, errOut, code := run(t, "vmsim", append(args, "-timeline", path)...)
		if code != 0 {
			t.Fatalf("exit %d, stderr: %s", code, errOut)
		}
	}
	da, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	db, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(da, db) {
		t.Fatalf("same seed produced different timeline CSVs:\n%s\nvs\n%s", da, db)
	}
	lines := strings.Split(strings.TrimRight(string(da), "\n"), "\n")
	if !strings.HasPrefix(lines[0], "instr,") {
		t.Fatalf("timeline header = %q", lines[0])
	}
	// 16000 live references at 3000/sample = 5 full + 1 partial interval.
	if len(lines) != 1+6 {
		t.Fatalf("got %d timeline rows, want 6:\n%s", len(lines)-1, da)
	}
}

// assertNoStrayFiles fails if dir holds anything — the temp-file-leak
// regression tests point the tools' output files into an empty
// directory, force an error exit, and demand the directory stays empty
// (no committed file, no stranded *.tmp*).
func assertNoStrayFiles(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		t.Errorf("stray file left behind: %s", e.Name())
	}
}

func TestVMSimFailureLeavesNoTempFiles(t *testing.T) {
	// -cpuprofile opens an atomic writer before the bad -vm is detected;
	// the error exit must abort it, not strand the pending temp file.
	dir := t.TempDir()
	_, errOut, code := run(t, "vmsim",
		"-cpuprofile", filepath.Join(dir, "cpu.out"), "-vm", "vax", "-n", "2000")
	if code != 1 {
		t.Fatalf("exit %d, want 1, stderr: %s", code, errOut)
	}
	assertNoStrayFiles(t, dir)
}

func TestVMSimTimelineCommitFailureLeavesNoTempFiles(t *testing.T) {
	// Committing onto an existing directory fails after the temp file
	// was written; the abort must remove it.
	dir := t.TempDir()
	blocked := filepath.Join(dir, "out.csv")
	if err := os.Mkdir(blocked, 0o755); err != nil {
		t.Fatal(err)
	}
	_, errOut, code := run(t, "vmsim",
		"-vm", "ultrix", "-bench", "gcc", "-n", "4000", "-timeline", blocked)
	if code != 1 {
		t.Fatalf("exit %d, want 1, stderr: %s", code, errOut)
	}
	if err := os.Remove(blocked); err != nil {
		t.Fatal(err)
	}
	assertNoStrayFiles(t, dir)
}

func TestVMSweepFailureLeavesNoTempFiles(t *testing.T) {
	// The bad -l1 list is rejected after the CPU profile's atomic
	// writer is open; the error exit must abort it.
	dir := t.TempDir()
	_, errOut, code := run(t, "vmsweep",
		"-cpuprofile", filepath.Join(dir, "cpu.out"), "-l1", "bogus")
	if code != 1 {
		t.Fatalf("exit %d, want 1, stderr: %s", code, errOut)
	}
	assertNoStrayFiles(t, dir)
}

func TestVMTraceWriteFailureLeavesNoTempFiles(t *testing.T) {
	dir := t.TempDir()
	blocked := filepath.Join(dir, "t.trc")
	if err := os.Mkdir(blocked, 0o755); err != nil {
		t.Fatal(err)
	}
	_, errOut, code := run(t, "vmtrace", "-bench", "gcc", "-n", "2000", "-o", blocked)
	if code != 1 {
		t.Fatalf("exit %d, want 1, stderr: %s", code, errOut)
	}
	if err := os.Remove(blocked); err != nil {
		t.Fatal(err)
	}
	assertNoStrayFiles(t, dir)
}

// manifest mirrors vmsweep's campaignManifest wire format.
type manifest struct {
	Schema      int            `json:"schema"`
	Benchmark   string         `json:"benchmark"`
	TraceSHA256 string         `json:"trace_sha256"`
	TraceRefs   int            `json:"trace_refs"`
	Configs     int            `json:"configs"`
	Workers     int            `json:"workers"`
	WallSeconds float64        `json:"wall_seconds"`
	SimSeconds  float64        `json:"sim_seconds"`
	Completed   int            `json:"completed"`
	Resumed     int            `json:"resumed"`
	Retried     int            `json:"retried"`
	Failed      int            `json:"failed"`
	Cancelled   int            `json:"cancelled"`
	Errors      map[string]int `json:"errors_by_category"`
	ExitStatus  int            `json:"exit_status"`
}

func readManifest(t *testing.T, path string) manifest {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("manifest not written: %v", err)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("manifest does not parse: %v\n%s", err, data)
	}
	return m
}

func TestVMSweepProgressAndManifest(t *testing.T) {
	mpath := filepath.Join(t.TempDir(), "m.json")
	// 2 VMs × 8 L1 sizes × 4 L1 linesizes × 2 L2 linesizes = 128 points.
	out, errOut, code := run(t, "vmsweep",
		"-bench", "gcc", "-n", "2000", "-vms", "ultrix,intel",
		"-l1", "paper", "-l1lines", "paper", "-l2lines", "64,128",
		"-progress", "-manifest", mpath)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	for _, want := range []string{"vmsweep: progress 0/128", "eta", "retried=", "resumed=", "failed=0", "(done in"} {
		if !strings.Contains(errOut, want) {
			t.Errorf("-progress stderr missing %q:\n%s", want, errOut)
		}
	}
	if rows, err := csv.NewReader(strings.NewReader(out)).ReadAll(); err != nil || len(rows) != 129 {
		t.Fatalf("expected 129 CSV rows (err=%v), got %d", err, len(rows))
	}
	m := readManifest(t, mpath)
	if m.Schema != 1 || m.Benchmark != "gcc" || m.Configs != 128 ||
		m.Completed != 128 || m.Failed != 0 || m.ExitStatus != 0 {
		t.Errorf("manifest fields implausible: %+v", m)
	}
	if len(m.TraceSHA256) != 64 {
		t.Errorf("trace_sha256 = %q, want 64 hex chars", m.TraceSHA256)
	}
	if m.TraceRefs != 2000 || m.Workers <= 0 || m.WallSeconds <= 0 || m.SimSeconds <= 0 {
		t.Errorf("manifest accounting implausible: %+v", m)
	}
}

func TestVMSweepManifestRecordsFailures(t *testing.T) {
	mpath := filepath.Join(t.TempDir(), "m.json")
	_, errOut, code := run(t, "vmsweep",
		"-bench", "gcc", "-n", "50000", "-vms", "ultrix", "-timeout", "1ns",
		"-manifest", mpath)
	if code != 3 {
		t.Fatalf("exit %d, want 3, stderr: %s", code, errOut)
	}
	m := readManifest(t, mpath)
	if m.ExitStatus != 3 || m.Failed != 1 || m.Errors["timeout"] != 1 {
		t.Errorf("failure manifest implausible: %+v", m)
	}
}

func TestVMExperimentQuick(t *testing.T) {
	dir := t.TempDir()
	out, errOut, code := run(t, "vmexperiment",
		"-quick", "-n", "20000", "-csv", dir, "tab1", "fig7")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	for _, want := range []string{"=== tab1", "=== fig7"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	for _, id := range []string{"tab1", "fig7"} {
		if _, err := os.Stat(filepath.Join(dir, id+".csv")); err != nil {
			t.Errorf("expected CSV for %s: %v", id, err)
		}
	}
}

func TestVMExperimentUsageOnNoArgs(t *testing.T) {
	_, _, code := run(t, "vmexperiment")
	if code != 2 {
		t.Fatalf("no-args exit = %d, want 2 (usage)", code)
	}
}

// TestVMTraceConvertRoundTrip: generate → convert to .vmtrc → convert
// back to binary. The stats report must be identical through every hop,
// and -format must override the extension heuristic.
func TestVMTraceConvertRoundTrip(t *testing.T) {
	dir := t.TempDir()
	bin := filepath.Join(dir, "gcc.trc")
	vmtrc := filepath.Join(dir, "gcc.vmtrc")
	back := filepath.Join(dir, "gcc-back.trc")

	if _, errOut, code := run(t, "vmtrace", "-bench", "gcc", "-n", "6000", "-o", bin); code != 0 {
		t.Fatalf("generate exit %d, stderr: %s", code, errOut)
	}
	out, errOut, code := run(t, "vmtrace", "-convert", "-i", bin, "-o", vmtrc)
	if code != 0 {
		t.Fatalf("convert to vmtrc exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "vmtrc format") {
		t.Fatalf("convert did not pick the vmtrc format from the extension:\n%s", out)
	}
	if _, errOut, code = run(t, "vmtrace", "-convert", "-i", vmtrc, "-o", back, "-format", "binary"); code != 0 {
		t.Fatalf("convert back exit %d, stderr: %s", code, errOut)
	}

	// The .vmtrc hop must not perturb a single reference: inspect all
	// three files and compare the full stats reports.
	var reports []string
	for _, f := range []string{bin, vmtrc, back} {
		out, errOut, code := run(t, "vmtrace", "-i", f)
		if code != 0 {
			t.Fatalf("inspect %s exit %d, stderr: %s", f, code, errOut)
		}
		reports = append(reports, out)
	}
	if reports[1] != reports[0] || reports[2] != reports[0] {
		t.Fatalf("stats diverge across formats:\n--- binary ---\n%s--- vmtrc ---\n%s--- back ---\n%s",
			reports[0], reports[1], reports[2])
	}

	// Delta-encoded SoA blocks should be materially smaller than the
	// packed 18-byte records for a real reference stream.
	bi, err := os.Stat(bin)
	if err != nil {
		t.Fatal(err)
	}
	vi, err := os.Stat(vmtrc)
	if err != nil {
		t.Fatal(err)
	}
	if vi.Size() >= bi.Size() {
		t.Errorf(".vmtrc (%d bytes) not smaller than binary (%d bytes)", vi.Size(), bi.Size())
	}

	if _, errOut, code := run(t, "vmtrace", "-convert", "-i", bin); code == 0 {
		t.Fatal("-convert without -o succeeded")
	} else if !strings.Contains(errOut, "-o") {
		t.Fatalf("unhelpful -convert error: %s", errOut)
	}
}

// TestVMSweepVMTRCInputMatchesBinary: a sweep replayed from a .vmtrc
// file must emit CSV byte-identical to the same sweep replayed from the
// classic binary file — format detection happens at the edge, the
// engine never knows.
func TestVMSweepVMTRCInputMatchesBinary(t *testing.T) {
	dir := t.TempDir()
	bin := filepath.Join(dir, "ijpeg.trc")
	vmtrc := filepath.Join(dir, "ijpeg.vmtrc")
	if _, errOut, code := run(t, "vmtrace", "-bench", "ijpeg", "-n", "6000", "-o", bin); code != 0 {
		t.Fatalf("generate exit %d, stderr: %s", code, errOut)
	}
	if _, errOut, code := run(t, "vmtrace", "-convert", "-i", bin, "-o", vmtrc); code != 0 {
		t.Fatalf("convert exit %d, stderr: %s", code, errOut)
	}
	args := []string{"-vms", "ultrix,intel", "-l1", "1024,4096"}
	fromBin, errOut, code := run(t, "vmsweep", append([]string{"-tracefile", bin}, args...)...)
	if code != 0 {
		t.Fatalf("binary-input sweep exit %d, stderr: %s", code, errOut)
	}
	fromVMTRC, errOut, code := run(t, "vmsweep", append([]string{"-tracefile", vmtrc}, args...)...)
	if code != 0 {
		t.Fatalf("vmtrc-input sweep exit %d, stderr: %s", code, errOut)
	}
	if fromVMTRC != fromBin {
		t.Fatalf("CSV diverges by input format:\n--- binary ---\n%s--- vmtrc ---\n%s", fromBin, fromVMTRC)
	}
}

// TestVMSweepWorkersByteIdentical: the end-to-end version of the
// parallel determinism oracle — -workers 1 and -workers 4 through the
// real binary, byte-identical stdout.
func TestVMSweepWorkersByteIdentical(t *testing.T) {
	args := []string{"-bench", "gcc", "-n", "6000", "-vms", "ultrix,intel", "-l1", "1024,4096,16384"}
	serial, errOut, code := run(t, "vmsweep", append([]string{"-workers", "1"}, args...)...)
	if code != 0 {
		t.Fatalf("serial exit %d, stderr: %s", code, errOut)
	}
	parallel, errOut, code := run(t, "vmsweep", append([]string{"-workers", "4"}, args...)...)
	if code != 0 {
		t.Fatalf("parallel exit %d, stderr: %s", code, errOut)
	}
	if parallel != serial {
		t.Fatalf("-workers 4 CSV differs from -workers 1:\n--- serial ---\n%s--- parallel ---\n%s", serial, parallel)
	}
}
