// End-to-end tests of the fault-tolerant distributed sweep: real
// vmserved worker processes, a real `vmsweep -remote ep1,ep2,ep3`
// coordinator, and real chaos — one worker SIGKILLed mid-campaign, one
// partitioned behind a hanging proxy, the coordinator itself killed and
// resumed. Every surviving run must produce a CSV byte-identical to a
// strictly serial local sweep.
package cmd_test

import (
	"bufio"
	"bytes"
	"net/http/httptest"
	"net/http/httputil"
	"net/url"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/journal"
)

// chaosArgs is the distributed-chaos campaign: enough points (16) that
// every worker owns a share of the ring and leases are in flight when
// the chaos lands, small enough per point that the whole suite stays
// fast.
var chaosArgs = []string{
	"-bench", "gcc", "-n", "20000",
	"-vms", "ultrix,intel",
	"-l1", "1024,2048,4096,8192",
	"-tlb", "16,32",
}

// serialGolden runs the campaign locally with one worker and returns
// its CSV.
func serialGolden(t *testing.T, args []string) string {
	t.Helper()
	out, errOut, code := run(t, "vmsweep", append([]string{"-workers", "1"}, args...)...)
	if code != 0 {
		t.Fatalf("serial local sweep exit %d, stderr: %s", code, errOut)
	}
	return out
}

// TestVMSweepDistributedChaosIsByteIdentical is the headline robustness
// oracle: a 3-worker campaign where one worker is SIGKILLed and another
// is partitioned (requests hang, never answer) as soon as the first
// lease is dispatched. The coordinator must reclaim both workers'
// leases, re-route their points to the survivor, and finish with output
// byte-identical to the serial local run.
func TestVMSweepDistributedChaosIsByteIdentical(t *testing.T) {
	local := serialGolden(t, chaosArgs)

	w1 := startVMServed(t, "-cache-dir", t.TempDir())
	w2 := startVMServed(t, "-cache-dir", t.TempDir())
	w3 := startVMServed(t, "-cache-dir", t.TempDir())

	// w2 sits behind a partition valve: once Cut, every request to it
	// hangs with no answer — the hung-worker failure mode, as opposed to
	// w1's crashed-worker conn-refused mode.
	target, err := url.Parse(w2.base)
	if err != nil {
		t.Fatal(err)
	}
	valve := &faults.Partition{Next: httputil.NewSingleHostReverseProxy(target)}
	proxy := httptest.NewServer(valve)
	t.Cleanup(func() {
		valve.Heal() // let hung requests drain so Close can finish
		proxy.Close()
	})

	args := append([]string{
		"-remote", strings.Join([]string{w1.base, proxy.URL, w3.base}, ","),
		"-lease-timeout", "2s",
	}, chaosArgs...)
	cmd := exec.Command(filepath.Join(binDir, "vmsweep"), args...)
	var stdout bytes.Buffer
	cmd.Stdout = &stdout
	stderrPipe, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	// Watch the coordinator's own lease log and strike as soon as the
	// first lease is in flight: SIGKILL w1, cut the w2 partition.
	var chaos sync.Once
	var stderrMu sync.Mutex
	var stderrBuf strings.Builder
	scanDone := make(chan struct{})
	go func() {
		defer close(scanDone)
		sc := bufio.NewScanner(stderrPipe)
		for sc.Scan() {
			line := sc.Text()
			stderrMu.Lock()
			stderrBuf.WriteString(line)
			stderrBuf.WriteByte('\n')
			stderrMu.Unlock()
			if strings.Contains(line, "coord: lease") {
				chaos.Do(func() {
					w1.cmd.Process.Kill() //nolint:errcheck
					valve.Cut()
				})
			}
		}
	}()

	waitErr := make(chan error, 1)
	go func() { waitErr <- cmd.Wait() }()
	select {
	case err := <-waitErr:
		<-scanDone
		stderrMu.Lock()
		errOut := stderrBuf.String()
		stderrMu.Unlock()
		if err != nil {
			t.Fatalf("chaos campaign did not survive: %v\nstderr:\n%s", err, errOut)
		}
		if !strings.Contains(errOut, "reclaiming lease") {
			t.Fatalf("no lease was ever reclaimed — chaos never landed?\nstderr:\n%s", errOut)
		}
	case <-time.After(120 * time.Second):
		cmd.Process.Kill() //nolint:errcheck
		t.Fatal("chaos campaign did not finish within 120s")
	}
	if got := stdout.String(); got != local {
		t.Fatalf("chaos CSV differs from serial local run:\n--- local ---\n%s--- chaos ---\n%s", local, got)
	}
}

// TestVMSweepCoordinatorKilledAndResumedIsByteIdentical kills the
// coordinator process itself once its journal holds completed points,
// then re-runs with -resume: replayed points and freshly simulated ones
// must reassemble into the identical CSV.
func TestVMSweepCoordinatorKilledAndResumedIsByteIdentical(t *testing.T) {
	local := serialGolden(t, chaosArgs)

	w1 := startVMServed(t, "-cache-dir", t.TempDir())
	w2 := startVMServed(t, "-cache-dir", t.TempDir())
	jdir := t.TempDir()
	endpoints := w1.base + "," + w2.base

	args := append([]string{"-remote", endpoints, "-journal", jdir}, chaosArgs...)
	victim := exec.Command(filepath.Join(binDir, "vmsweep"), args...)
	victim.Stdout, victim.Stderr = &bytes.Buffer{}, &bytes.Buffer{}
	if err := victim.Start(); err != nil {
		t.Fatal(err)
	}
	// Kill as soon as the journal holds at least one committed
	// (CRC-sealed) point — raw file size is not enough: the SIGKILL
	// could land mid-append, leaving only a torn record that replay
	// rightly discards.
	deadline := time.Now().Add(60 * time.Second)
	for journalRecords(jdir) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("journal never gained a committed point")
		}
		time.Sleep(5 * time.Millisecond)
	}
	victim.Process.Kill() //nolint:errcheck
	victim.Wait()         //nolint:errcheck

	resumeArgs := append([]string{"-remote", endpoints, "-journal", jdir, "-resume"}, chaosArgs...)
	out, errOut, code := run(t, "vmsweep", resumeArgs...)
	if code != 0 {
		t.Fatalf("resumed coordinator exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(errOut, "coord: resumed") {
		t.Fatalf("resume replayed nothing from the journal, stderr: %s", errOut)
	}
	if out != local {
		t.Fatalf("resumed CSV differs from serial local run:\n--- local ---\n%s--- resumed ---\n%s", local, out)
	}
}

// journalRecords counts the CRC-valid records currently replayable
// from dir, tolerating the torn tail of an in-flight append.
func journalRecords(dir string) int {
	recs, _, err := journal.Replay(dir)
	if err != nil {
		return 0
	}
	return len(recs)
}

// TestVMServedCoordinatorFrontDoor drives the daemon's coordinator
// mode: a plain single-endpoint `vmsweep -remote` talks to one vmserved
// which fans the job out to two backing workers, and the reassembled
// CSV matches the serial local run.
func TestVMServedCoordinatorFrontDoor(t *testing.T) {
	local := serialGolden(t, sweepArgs)

	w1 := startVMServed(t, "-cache-dir", t.TempDir())
	w2 := startVMServed(t, "-cache-dir", t.TempDir())
	front := startVMServed(t, "-coord", w1.base+","+w2.base)

	out, errOut, code := run(t, "vmsweep", append([]string{"-remote", front.base}, sweepArgs...)...)
	if code != 0 {
		t.Fatalf("front-door sweep exit %d, stderr: %s", code, errOut)
	}
	if out != local {
		t.Fatalf("front-door CSV differs from serial local run:\n--- local ---\n%s--- front-door ---\n%s", local, out)
	}
}
