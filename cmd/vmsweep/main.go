// Command vmsweep runs a configuration cross-product over one benchmark
// and emits a CSV row per point — the raw data behind the paper's figures,
// for plotting with external tools.
//
// Usage:
//
//	vmsweep -bench gcc -vms ultrix,intel -l1 1024,8192,65536 > gcc.csv
//	vmsweep -bench vortex -vms all -l1 paper -l2 paper -lines paper
//	vmsweep -tracefile gcc.trace -vms ultrix -l1 paper
//	vmsweep -bench gcc -vms all -l1 paper -journal gcc.journal > gcc.csv
//	vmsweep -bench gcc -vms all -l1 paper -journal gcc.journal -resume > gcc.csv  # after a crash
//
// Memory: the sweep's footprint is bounded by one shared read-only trace
// (24 bytes per reference — 24MB for a million-instruction trace) plus
// one live engine per worker (cache and TLB arrays, a few hundred KB to
// a few MB each depending on cache sizes); it does not grow with the
// number of configurations, so paper-scale cross-products (thousands of
// points) run in a few hundred MB. To bound memory, bound -n (or the
// replayed trace's length) and -workers. Ctrl-C cancels the sweep:
// in-flight points finish, pending points are dropped, and the rows
// completed so far remain valid CSV on stdout.
//
// Fault tolerance: -journal DIR records every completed point durably;
// -resume replays the journal and re-runs only the remainder, producing
// output identical to an uninterrupted run. -timeout bounds each point,
// -retries/-backoff absorb transient failures (timeouts, panics); a
// point that keeps failing is reported per-category on stderr and the
// tool exits 3 while the healthy rows stay valid.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	mmusim "repro"
	"repro/internal/atomicio"
)

func parseInts(s string, paper []int) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	if s == "paper" {
		return paper, nil
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", f)
		}
		out = append(out, v)
	}
	return out, nil
}

var (
	paperL1    = []int{1 << 10, 2 << 10, 4 << 10, 8 << 10, 16 << 10, 32 << 10, 64 << 10, 128 << 10}
	paperL2    = []int{1 << 20, 2 << 20, 4 << 20}
	paperLines = []int{16, 32, 64, 128}
)

func main() {
	var (
		bench   = flag.String("bench", "gcc", "benchmark")
		vms     = flag.String("vms", "ultrix,mach,intel,pa-risc,notlb", "comma list of organizations, or 'all'")
		l1s     = flag.String("l1", "", "comma list of L1 sizes in bytes, or 'paper'")
		l2s     = flag.String("l2", "", "comma list of L2 sizes in bytes, or 'paper'")
		l1lines = flag.String("l1lines", "", "comma list of L1 linesizes, or 'paper'")
		l2lines = flag.String("l2lines", "", "comma list of L2 linesizes, or 'paper'")
		tlbs    = flag.String("tlb", "", "comma list of TLB sizes")
		n       = flag.Int("n", 500_000, "trace length in instructions")
		seed    = flag.Uint64("seed", 42, "deterministic seed")
		workers = flag.Int("workers", 0, "parallel simulations (0 = GOMAXPROCS)")
		traceIn = flag.String("tracefile", "", "replay this trace file instead of generating -bench")
		dinIn   = flag.String("din", "", "replay this Dinero-format text trace instead of generating -bench")
		cpuProf = flag.String("cpuprofile", "", "write a pprof CPU profile of the sweep to this file")
		memProf = flag.String("memprofile", "", "write a pprof allocation profile to this file at exit")
		jdir    = flag.String("journal", "", "journal completed points to this directory (crash-safe, resumable)")
		resume  = flag.Bool("resume", false, "replay -journal before sweeping and skip already-completed points")
		timeout = flag.Duration("timeout", 0, "per-point deadline (0 = none), e.g. 30s")
		retries = flag.Int("retries", 0, "extra attempts for transiently-failing points (timeouts, panics)")
		backoff = flag.Duration("backoff", 100*time.Millisecond, "first retry delay; doubles per attempt")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "vmsweep:", err)
		os.Exit(1)
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	vmList := strings.Split(*vms, ",")
	if *vms == "all" {
		vmList = mmusim.VMs()
	}
	space := mmusim.SweepSpace{Base: mmusim.DefaultConfig(vmList[0]), VMs: vmList}
	space.Base.Seed = *seed
	var err error
	if space.L1Sizes, err = parseInts(*l1s, paperL1); err != nil {
		fail(err)
	}
	if space.L2Sizes, err = parseInts(*l2s, paperL2); err != nil {
		fail(err)
	}
	if space.L1Lines, err = parseInts(*l1lines, paperLines); err != nil {
		fail(err)
	}
	if space.L2Lines, err = parseInts(*l2lines, paperLines); err != nil {
		fail(err)
	}
	if space.TLBEntries, err = parseInts(*tlbs, nil); err != nil {
		fail(err)
	}

	var tr *mmusim.Trace
	label := *bench
	switch {
	case *traceIn != "":
		f, ferr := os.Open(*traceIn)
		if ferr != nil {
			fail(ferr)
		}
		if tr, err = mmusim.ReadTrace(f); err != nil {
			fail(err)
		}
		f.Close()
		label = tr.Name
	case *dinIn != "":
		f, ferr := os.Open(*dinIn)
		if ferr != nil {
			fail(ferr)
		}
		if tr, err = mmusim.ReadDineroTrace(f, *dinIn); err != nil {
			fail(err)
		}
		f.Close()
		label = tr.Name
	default:
		if tr, err = mmusim.GenerateTrace(*bench, *seed, *n); err != nil {
			fail(err)
		}
	}
	cfgs := space.Configs()
	fmt.Fprintf(os.Stderr, "vmsweep: %d configurations × %d instructions (%s)\n",
		len(cfgs), tr.Len(), label)

	// Ctrl-C cancels the sweep cleanly: completed rows stay valid CSV.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *resume && *jdir == "" {
		fail(fmt.Errorf("-resume requires -journal"))
	}
	exitCode := 0
	points, err := mmusim.SweepWithOptions(ctx, tr, cfgs, mmusim.SweepOptions{
		Workers:      *workers,
		JournalDir:   *jdir,
		Resume:       *resume,
		PointTimeout: *timeout,
		Retries:      *retries,
		Backoff:      *backoff,
	})
	if err != nil {
		fail(err)
	}

	fmt.Println("benchmark,vm,l1_bytes,l2_bytes,l1_line,l2_line,tlb_entries," +
		"mcpi,vmcpi,int_cpi_10,int_cpi_50,int_cpi_200,interrupts,itlb_missrate,dtlb_missrate")
	byCategory := map[string]int{}
	resumed, failed := 0, 0
	for _, p := range points {
		if p.Err != nil {
			cat := mmusim.ErrorCategory(p.Err)
			byCategory[cat]++
			if cat != "cancelled" {
				failed++
				fmt.Fprintf(os.Stderr, "vmsweep: point %s failed (%s): %v\n", p.Config.Label(), cat, p.Err)
			}
			continue
		}
		if p.Resumed {
			resumed++
		}
		r := p.Result
		c := p.Config
		fmt.Printf("%s,%s,%d,%d,%d,%d,%d,%.6f,%.6f,%.6f,%.6f,%.6f,%d,%.6f,%.6f\n",
			label, c.VM, c.L1SizeBytes, c.L2SizeBytes, c.L1LineBytes, c.L2LineBytes,
			c.TLBEntries, r.MCPI(), r.VMCPI(),
			r.Counters.InterruptCPI(10), r.Counters.InterruptCPI(50), r.Counters.InterruptCPI(200),
			r.Counters.Interrupts, r.Counters.ITLBMissRate(), r.Counters.DTLBMissRate())
	}
	if resumed > 0 {
		fmt.Fprintf(os.Stderr, "vmsweep: %d of %d points replayed from journal %s\n", resumed, len(cfgs), *jdir)
	}
	if cancelled := byCategory["cancelled"]; cancelled > 0 {
		fmt.Fprintf(os.Stderr, "vmsweep: interrupted — %d of %d points not run\n", cancelled, len(cfgs))
	}
	if failed > 0 {
		// Per-category failure summary, categories in taxonomy order.
		var parts []string
		for _, cat := range mmusim.ErrorCategories() {
			if cat == "cancelled" {
				continue
			}
			if n := byCategory[cat]; n > 0 {
				parts = append(parts, fmt.Sprintf("%s=%d", cat, n))
			}
		}
		fmt.Fprintf(os.Stderr, "vmsweep: %d of %d points failed (%s); completed rows above are valid\n",
			failed, len(cfgs), strings.Join(parts, " "))
		exitCode = 3
	}
	if *memProf != "" {
		f, ferr := atomicio.Create(*memProf)
		if ferr != nil {
			fail(ferr)
		}
		runtime.GC()
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			fail(err)
		}
		if err := f.Commit(); err != nil {
			fail(err)
		}
	}
	if exitCode != 0 {
		// Flush the CPU profile before the deliberate non-zero exit
		// (os.Exit skips the deferred stop).
		pprof.StopCPUProfile()
		os.Exit(exitCode)
	}
}
