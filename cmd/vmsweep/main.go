// Command vmsweep runs a configuration cross-product over one benchmark
// and emits a CSV row per point — the raw data behind the paper's figures,
// for plotting with external tools.
//
// Usage:
//
//	vmsweep -bench gcc -vms ultrix,intel -l1 1024,8192,65536 > gcc.csv
//	vmsweep -bench vortex -vms all -l1 paper -l2 paper -lines paper
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	mmusim "repro"
)

func parseInts(s string, paper []int) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	if s == "paper" {
		return paper, nil
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", f)
		}
		out = append(out, v)
	}
	return out, nil
}

var (
	paperL1    = []int{1 << 10, 2 << 10, 4 << 10, 8 << 10, 16 << 10, 32 << 10, 64 << 10, 128 << 10}
	paperL2    = []int{1 << 20, 2 << 20, 4 << 20}
	paperLines = []int{16, 32, 64, 128}
)

func main() {
	var (
		bench   = flag.String("bench", "gcc", "benchmark")
		vms     = flag.String("vms", "ultrix,mach,intel,pa-risc,notlb", "comma list of organizations, or 'all'")
		l1s     = flag.String("l1", "", "comma list of L1 sizes in bytes, or 'paper'")
		l2s     = flag.String("l2", "", "comma list of L2 sizes in bytes, or 'paper'")
		l1lines = flag.String("l1lines", "", "comma list of L1 linesizes, or 'paper'")
		l2lines = flag.String("l2lines", "", "comma list of L2 linesizes, or 'paper'")
		tlbs    = flag.String("tlb", "", "comma list of TLB sizes")
		n       = flag.Int("n", 500_000, "trace length in instructions")
		seed    = flag.Uint64("seed", 42, "deterministic seed")
		workers = flag.Int("workers", 0, "parallel simulations (0 = GOMAXPROCS)")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "vmsweep:", err)
		os.Exit(1)
	}

	vmList := strings.Split(*vms, ",")
	if *vms == "all" {
		vmList = mmusim.VMs()
	}
	space := mmusim.SweepSpace{Base: mmusim.DefaultConfig(vmList[0]), VMs: vmList}
	space.Base.Seed = *seed
	var err error
	if space.L1Sizes, err = parseInts(*l1s, paperL1); err != nil {
		fail(err)
	}
	if space.L2Sizes, err = parseInts(*l2s, paperL2); err != nil {
		fail(err)
	}
	if space.L1Lines, err = parseInts(*l1lines, paperLines); err != nil {
		fail(err)
	}
	if space.L2Lines, err = parseInts(*l2lines, paperLines); err != nil {
		fail(err)
	}
	if space.TLBEntries, err = parseInts(*tlbs, nil); err != nil {
		fail(err)
	}

	tr, err := mmusim.GenerateTrace(*bench, *seed, *n)
	if err != nil {
		fail(err)
	}
	cfgs := space.Configs()
	fmt.Fprintf(os.Stderr, "vmsweep: %d configurations × %d instructions (%s)\n",
		len(cfgs), *n, *bench)

	fmt.Println("benchmark,vm,l1_bytes,l2_bytes,l1_line,l2_line,tlb_entries," +
		"mcpi,vmcpi,int_cpi_10,int_cpi_50,int_cpi_200,interrupts,itlb_missrate,dtlb_missrate")
	for _, p := range mmusim.Sweep(tr, cfgs, *workers) {
		if p.Err != nil {
			fail(p.Err)
		}
		r := p.Result
		c := p.Config
		fmt.Printf("%s,%s,%d,%d,%d,%d,%d,%.6f,%.6f,%.6f,%.6f,%.6f,%d,%.6f,%.6f\n",
			*bench, c.VM, c.L1SizeBytes, c.L2SizeBytes, c.L1LineBytes, c.L2LineBytes,
			c.TLBEntries, r.MCPI(), r.VMCPI(),
			r.Counters.InterruptCPI(10), r.Counters.InterruptCPI(50), r.Counters.InterruptCPI(200),
			r.Counters.Interrupts, r.Counters.ITLBMissRate(), r.Counters.DTLBMissRate())
	}
}
