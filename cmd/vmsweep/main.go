// Command vmsweep runs a configuration cross-product over one benchmark
// and emits a CSV row per point — the raw data behind the paper's figures,
// for plotting with external tools.
//
// Usage:
//
//	vmsweep -bench gcc -vms ultrix,intel -l1 1024,8192,65536 > gcc.csv
//	vmsweep -bench vortex -vms all -l1 paper -l2 paper -lines paper
//	vmsweep -bench gcc -vms l2tlb -tlb2 256,512,1024,2048 > l2tlb.csv
//	vmsweep -bench gcc -machine custom.json -l1 paper > custom.csv
//	vmsweep -tracefile gcc.trace -vms ultrix -l1 paper
//	vmsweep -bench gcc -vms ultrix,intel -cores 1,2,4 -ospolicies first-touch,lru -memframes 128 > mc.csv
//	vmsweep -bench gcc -vms all -l1 paper -journal gcc.journal > gcc.csv
//	vmsweep -bench gcc -vms all -l1 paper -journal gcc.journal -resume > gcc.csv  # after a crash
//	vmsweep -bench gcc -vms all -l1 paper -progress -manifest gcc.manifest.json > gcc.csv
//	vmsweep -remote http://localhost:8080 -bench gcc -vms all -l1 paper > gcc.csv
//
// Memory: the sweep's footprint is bounded by one shared read-only trace
// (24 bytes per reference — 24MB for a million-instruction trace) plus
// one live engine per worker (cache and TLB arrays, a few hundred KB to
// a few MB each depending on cache sizes); it does not grow with the
// number of configurations, so paper-scale cross-products (thousands of
// points) run in a few hundred MB. To bound memory, bound -n (or the
// replayed trace's length) and -workers. Ctrl-C cancels the sweep:
// in-flight points finish, pending points are dropped, and the rows
// completed so far remain valid CSV on stdout.
//
// Fault tolerance: -journal DIR records every completed point durably;
// -resume replays the journal and re-runs only the remainder, producing
// output identical to an uninterrupted run. -timeout bounds each point,
// -retries/-backoff absorb transient failures (timeouts, panics); a
// point that keeps failing is reported per-category on stderr and the
// tool exits 3 while the healthy rows stay valid.
//
// Observability: -progress reports completed/total, rate, ETA, and
// retried/resumed/failed counts on stderr while the campaign runs;
// -manifest FILE writes an end-of-run JSON manifest (trace sha256,
// configuration count, wall and summed per-point seconds, per-category
// failure counts, exit status) atomically even when the tool exits 3;
// -debug-addr serves net/http/pprof and expvar (including the live
// vmsweep.progress snapshot) over HTTP.
//
// Serving: -remote ADDR runs the identical campaign on a vmserved
// instance instead of simulating locally — the trace is uploaded once
// (content-addressed), every point the server has seen before replays
// from its result cache, and the CSV on stdout is byte-identical to a
// local run. A killed -remote campaign simply re-runs: finished points
// are cache hits. Single-endpoint -remote is incompatible with
// -journal/-resume (the server's cache is the checkpoint);
// -timeout/-retries/-backoff are applied by the server's own
// configuration, not these flags.
//
// Distributed sweeps: -remote with a comma-separated endpoint list
// engages the fault-tolerant coordinator (internal/coord) — points are
// leased to workers along a consistent-hash ring, a worker that dies,
// hangs, or partitions mid-campaign loses its lease and the points are
// re-dispatched, and idle workers steal from stragglers. -journal and
// -resume ARE supported here (the journal is the coordinator's durable
// checkpoint: kill vmsweep mid-campaign and re-run with -resume), and
// -lease-timeout tunes the no-progress deadline. The CSV is still
// byte-identical to a serial local run:
//
//	vmsweep -remote http://w1:8080,http://w2:8080,http://w3:8080 \
//	        -bench gcc -vms all -l1 paper -journal gcc.journal > gcc.csv
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	mmusim "repro"
	"repro/internal/api"
	"repro/internal/atomicio"
	"repro/internal/client"
	"repro/internal/coord"
	"repro/internal/obs"
	"repro/internal/version"
)

func parseInts(s string, paper []int) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	if s == "paper" {
		return paper, nil
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", f)
		}
		out = append(out, v)
	}
	return out, nil
}

var (
	paperL1    = []int{1 << 10, 2 << 10, 4 << 10, 8 << 10, 16 << 10, 32 << 10, 64 << 10, 128 << 10}
	paperL2    = []int{1 << 20, 2 << 20, 4 << 20}
	paperLines = []int{16, 32, 64, 128}
)

// campaignManifest is the machine-readable end-of-run record written by
// -manifest: enough to tell what ran, on what input, how long it took,
// and how it ended, without re-parsing stderr.
type campaignManifest struct {
	Schema      int    `json:"schema"`
	Benchmark   string `json:"benchmark"`
	TraceSHA256 string `json:"trace_sha256"`
	TraceRefs   int    `json:"trace_refs"`
	Configs     int    `json:"configs"`
	Workers     int    `json:"workers"`
	// WallSeconds is the campaign's elapsed time; SimSeconds sums the
	// per-point wall-clock durations across all workers (attempts and
	// backoff included), so SimSeconds/WallSeconds approximates the
	// achieved parallelism.
	WallSeconds float64 `json:"wall_seconds"`
	SimSeconds  float64 `json:"sim_seconds"`
	Completed   int     `json:"completed"`
	Resumed     int     `json:"resumed"`
	Retried     int     `json:"retried"`
	Failed      int     `json:"failed"`
	Cancelled   int     `json:"cancelled"`
	// Errors counts quarantined points per taxonomy category
	// (config/trace/timeout/panic/other); cancelled points are tallied
	// separately above.
	Errors     map[string]int `json:"errors_by_category,omitempty"`
	ExitStatus int            `json:"exit_status"`
}

// runRemote executes the campaign on a vmserved instance instead of
// simulating locally: the trace is made resident (uploaded only when
// the server does not already hold its digest), the whole
// configuration list is submitted as one job, and polling drives the
// same progress tracker a local sweep feeds. The returned points are
// rebuilt losslessly from the wire results, so the CSV emitted
// downstream is byte-identical to a local run's.
func runRemote(ctx context.Context, addr string, tr *mmusim.Trace, cfgs []mmusim.Config, prog *obs.Progress) ([]mmusim.SweepPoint, error) {
	c := client.New(addr)
	sha, err := c.EnsureTrace(ctx, tr)
	if err != nil {
		return nil, err
	}
	sr, err := c.Submit(ctx, sha, cfgs)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "vmsweep: job %s (%d points) on %s (engine %s)\n",
		sr.JobID, sr.Points, addr, sr.Engine)
	seen := 0
	st, err := c.Wait(ctx, sr.JobID, 200*time.Millisecond, func(st api.JobStatus) {
		for ; seen < st.Done; seen++ {
			prog.Done(1, false, false)
		}
	})
	if err != nil {
		return nil, err
	}
	points := make([]mmusim.SweepPoint, len(cfgs))
	cached := 0
	for i, r := range st.Results {
		points[i] = client.ToSweepPoint(cfgs[i], r)
		if r.Cached {
			cached++
		}
	}
	if cached > 0 {
		fmt.Fprintf(os.Stderr, "vmsweep: %d of %d points replayed from vmserved cache\n", cached, len(cfgs))
	}
	return points, nil
}

// runCoord executes the campaign across a fleet of vmserved workers via
// the fault-tolerant coordinator: leases, consistent-hash routing with
// failover, work stealing, and — unlike single-endpoint -remote — a
// durable local journal, so a killed coordinator resumes instead of
// restarting.
func runCoord(ctx context.Context, endpoints []string, tr *mmusim.Trace, cfgs []mmusim.Config,
	prog *obs.Progress, jdir string, resume bool, leaseTimeout time.Duration, seed uint64) ([]mmusim.SweepPoint, error) {
	fmt.Fprintf(os.Stderr, "vmsweep: coordinating %d points across %d workers\n", len(cfgs), len(endpoints))
	return coord.Run(ctx, tr, cfgs, coord.Options{
		Endpoints:    endpoints,
		LeaseTimeout: leaseTimeout,
		JournalDir:   jdir,
		Resume:       resume,
		Seed:         seed,
		PointDone: func(_ int, p mmusim.SweepPoint) {
			prog.Done(p.Attempts, p.Resumed,
				p.Err != nil && mmusim.ErrorCategory(p.Err) != "cancelled")
		},
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "vmsweep: "+format+"\n", args...)
		},
	})
}

// splitEndpoints parses -remote's comma-separated endpoint list.
func splitEndpoints(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func main() {
	start := time.Now()
	var (
		bench     = flag.String("bench", "gcc", "benchmark")
		vms       = flag.String("vms", "ultrix,mach,intel,pa-risc,notlb", "comma list of organizations, or 'all'")
		machineIn = flag.String("machine", "", "sweep the machine from this spec file (JSON, see MACHINES.md) instead of -vms")
		listVMs   = flag.Bool("list-vms", false, "list every registered machine with its description and exit")
		l1s       = flag.String("l1", "", "comma list of L1 sizes in bytes, or 'paper'")
		l2s       = flag.String("l2", "", "comma list of L2 sizes in bytes, or 'paper'")
		l1lines   = flag.String("l1lines", "", "comma list of L1 linesizes, or 'paper'")
		l2lines   = flag.String("l2lines", "", "comma list of L2 linesizes, or 'paper'")
		tlbs      = flag.String("tlb", "", "comma list of TLB sizes")
		tlb2s     = flag.String("tlb2", "", "comma list of second-level TLB sizes (0 = none)")
		tlb2Ways  = flag.Int("tlb2assoc", 0, "second-level TLB associativity for every point (0 = fully associative)")
		coresFl   = flag.String("cores", "", "comma list of core counts (>1 runs the multicore cluster)")
		osPols    = flag.String("ospolicies", "", "comma list of OS page-allocation policies, from "+fmt.Sprint(mmusim.OSPolicies()))
		frames    = flag.Int("memframes", 0, "physical frame budget in pages for every point (0 = unbounded)")
		shootFl   = flag.Uint64("shootdown", 0, "cycles per remote TLB shootdown for every point (default: the machine spec's)")
		n         = flag.Int("n", 500_000, "trace length in instructions")
		seed      = flag.Uint64("seed", 42, "deterministic seed")
		workers   = flag.Int("workers", 0, "parallel simulations (0 = GOMAXPROCS)")
		traceIn   = flag.String("tracefile", "", "replay this trace file instead of generating -bench")
		dinIn     = flag.String("din", "", "replay this Dinero-format text trace instead of generating -bench")
		cpuProf   = flag.String("cpuprofile", "", "write a pprof CPU profile of the sweep to this file")
		memProf   = flag.String("memprofile", "", "write a pprof allocation profile to this file at exit")
		jdir      = flag.String("journal", "", "journal completed points to this directory (crash-safe, resumable)")
		resumeFl  = flag.Bool("resume", false, "replay -journal before sweeping and skip already-completed points")
		timeout   = flag.Duration("timeout", 0, "per-point deadline (0 = none), e.g. 30s")
		retries   = flag.Int("retries", 0, "extra attempts for transiently-failing points (timeouts, panics)")
		backoff   = flag.Duration("backoff", 100*time.Millisecond, "first retry delay; doubles per attempt")
		progress  = flag.Bool("progress", false, "report live completion/rate/ETA on stderr")
		manifest  = flag.String("manifest", "", "write an end-of-run campaign manifest (JSON) to this file")
		debugAddr = flag.String("debug-addr", "", "serve net/http/pprof and expvar on this address (e.g. localhost:6060)")
		remote    = flag.String("remote", "", "run the campaign on vmserved instance(s) instead of simulating locally; a comma-separated list engages the fault-tolerant coordinator")
		leaseTO   = flag.Duration("lease-timeout", coord.DefaultLeaseTimeout, "multi-endpoint -remote: no-progress deadline before a worker's lease is reclaimed")
		showVer   = flag.Bool("version", false, "print the engine version and exit")
	)
	flag.Parse()
	if *showVer {
		fmt.Println(version.String())
		return
	}
	if *listVMs {
		for _, s := range mmusim.BundledMachines() {
			fmt.Printf("%-12s %s\n", s.Name, s.Description)
		}
		return
	}
	// Record which flags the user actually set: a machine spec seeds the
	// TLB hierarchy, which the TLB flags' defaults must not clobber.
	setFlags := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { setFlags[f.Name] = true })

	// cleanups holds abort handlers for in-flight atomic writes: fail()
	// exits with os.Exit, which skips defers, and an uncommitted
	// atomicio.File strands its temporary file unless Closed. Close
	// after Commit is a no-op, so handlers are always safe to run.
	var cleanups []func()
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "vmsweep:", err)
		for i := len(cleanups) - 1; i >= 0; i-- {
			cleanups[i]()
		}
		os.Exit(1)
	}

	stopCPUProfile := func() {}
	if *cpuProf != "" {
		f, err := atomicio.Create(*cpuProf)
		if err != nil {
			fail(err)
		}
		cleanups = append(cleanups, func() {
			pprof.StopCPUProfile()
			f.Close()
		})
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		stopCPUProfile = func() {
			pprof.StopCPUProfile()
			if err := f.Commit(); err != nil {
				fmt.Fprintln(os.Stderr, "vmsweep:", err)
			}
		}
	}
	defer stopCPUProfile()

	if *debugAddr != "" {
		dbg, err := obs.ServeDebug(*debugAddr)
		if err != nil {
			fail(err)
		}
		// Shut the debug listener down on every exit path (fail() and the
		// deliberate non-zero exit below included), instead of abandoning
		// the socket to the process teardown.
		cleanups = append(cleanups, func() { dbg.Close() }) //nolint:errcheck
		defer dbg.Close()                                   //nolint:errcheck
		fmt.Fprintf(os.Stderr, "vmsweep: debug server at http://%s/debug/pprof/ and /debug/vars\n", dbg.Addr)
	}

	var space mmusim.SweepSpace
	if *machineIn != "" {
		if setFlags["vms"] {
			fail(fmt.Errorf("-vms and -machine are mutually exclusive (the spec file names its machine)"))
		}
		spec, merr := mmusim.LoadMachineSpec(*machineIn)
		if merr != nil {
			fail(merr)
		}
		space = mmusim.SweepSpace{Base: mmusim.ConfigForMachine(spec), VMs: []string{spec.Name}}
	} else {
		vmList := strings.Split(*vms, ",")
		if *vms == "all" {
			vmList = mmusim.VMs()
		}
		space = mmusim.SweepSpace{Base: mmusim.DefaultConfig(vmList[0]), VMs: vmList}
	}
	space.Base.Seed = *seed
	if setFlags["tlb2assoc"] {
		space.Base.TLB2Assoc = *tlb2Ways
	}
	var err error
	if space.L1Sizes, err = parseInts(*l1s, paperL1); err != nil {
		fail(err)
	}
	if space.L2Sizes, err = parseInts(*l2s, paperL2); err != nil {
		fail(err)
	}
	if space.L1Lines, err = parseInts(*l1lines, paperLines); err != nil {
		fail(err)
	}
	if space.L2Lines, err = parseInts(*l2lines, paperLines); err != nil {
		fail(err)
	}
	if space.TLBEntries, err = parseInts(*tlbs, nil); err != nil {
		fail(err)
	}
	if space.TLB2Entries, err = parseInts(*tlb2s, nil); err != nil {
		fail(err)
	}
	if space.Cores, err = parseInts(*coresFl, nil); err != nil {
		fail(err)
	}
	if *osPols != "" {
		for _, p := range strings.Split(*osPols, ",") {
			space.OSPolicies = append(space.OSPolicies, strings.TrimSpace(p))
		}
	}
	if setFlags["memframes"] {
		space.Base.MemFrames = *frames
	}
	if setFlags["shootdown"] {
		space.Base.ShootdownCost = *shootFl
	}

	var tr *mmusim.Trace
	label := *bench
	switch {
	case *traceIn != "":
		// Format auto-detection: classic binary, .vmtrc (decoded through
		// the memory-mapped block reader), or Dinero text.
		if tr, err = mmusim.OpenTraceFile(*traceIn); err != nil {
			fail(err)
		}
		label = tr.Name
	case *dinIn != "":
		f, ferr := os.Open(*dinIn)
		if ferr != nil {
			fail(ferr)
		}
		if tr, err = mmusim.ReadDineroTrace(f, *dinIn); err != nil {
			fail(err)
		}
		f.Close()
		label = tr.Name
	default:
		if tr, err = mmusim.GenerateTrace(*bench, *seed, *n); err != nil {
			fail(err)
		}
	}
	cfgs := space.Configs()
	fmt.Fprintf(os.Stderr, "vmsweep: %d configurations × %d instructions (%s)\n",
		len(cfgs), tr.Len(), label)

	// Ctrl-C cancels the sweep cleanly: completed rows stay valid CSV.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *resumeFl && *jdir == "" {
		fail(fmt.Errorf("-resume requires -journal"))
	}
	remotes := splitEndpoints(*remote)
	if len(remotes) == 1 && (*jdir != "" || *resumeFl) {
		// Single-endpoint remote campaigns are checkpointed by the
		// server's result cache (kill vmsweep and re-run: finished points
		// replay from the cache); the local journal has no role. The
		// multi-endpoint coordinator journals locally — there the flags
		// are supported.
		fail(fmt.Errorf("-remote is incompatible with -journal/-resume"))
	}

	// The progress tracker runs unconditionally (its per-point cost is
	// a few atomic adds); -progress decides whether it is printed, and
	// the expvar export makes it visible under -debug-addr regardless.
	prog := obs.NewProgress(len(cfgs))
	obs.Publish("vmsweep.progress", func() any { return prog.Snapshot() })
	var progressStop chan struct{}
	var progressWG sync.WaitGroup
	if *progress {
		fmt.Fprintf(os.Stderr, "vmsweep: progress %s\n", prog.Snapshot())
		progressStop = make(chan struct{})
		progressWG.Add(1)
		go func() {
			defer progressWG.Done()
			t := time.NewTicker(time.Second)
			defer t.Stop()
			for {
				select {
				case <-progressStop:
					return
				case <-t.C:
					fmt.Fprintf(os.Stderr, "vmsweep: progress %s\n", prog.Snapshot())
				}
			}
		}()
	}

	exitCode := 0
	var points []mmusim.SweepPoint
	switch {
	case len(remotes) > 1:
		points, err = runCoord(ctx, remotes, tr, cfgs, prog, *jdir, *resumeFl, *leaseTO, *seed)
	case len(remotes) == 1:
		points, err = runRemote(ctx, remotes[0], tr, cfgs, prog)
	default:
		points, err = mmusim.SweepWithOptions(ctx, tr, cfgs, mmusim.SweepOptions{
			Workers:      *workers,
			JournalDir:   *jdir,
			Resume:       *resumeFl,
			PointTimeout: *timeout,
			Retries:      *retries,
			Backoff:      *backoff,
			PointDone: func(i int, p mmusim.SweepPoint) {
				prog.Done(p.Attempts, p.Resumed,
					p.Err != nil && mmusim.ErrorCategory(p.Err) != "cancelled")
			},
		})
	}
	if *progress {
		close(progressStop)
		progressWG.Wait()
	}
	if err != nil {
		fail(err)
	}
	if *progress {
		fmt.Fprintf(os.Stderr, "vmsweep: progress %s (done in %s)\n",
			prog.Snapshot(), time.Since(start).Round(time.Millisecond))
	}

	// The canonical CSV writer emits rows in point order regardless of
	// which worker finished when — this is the function the determinism
	// suites pin byte-identical across -workers 1/N, -remote, and
	// -resume.
	if _, err := mmusim.WriteSweepCSV(os.Stdout, label, points); err != nil {
		fail(err)
	}
	byCategory := map[string]int{}
	resumed, failed := 0, 0
	for _, p := range points {
		if p.Err != nil {
			cat := mmusim.ErrorCategory(p.Err)
			byCategory[cat]++
			if cat != "cancelled" {
				failed++
				fmt.Fprintf(os.Stderr, "vmsweep: point %s failed (%s): %v\n", p.Config.Label(), cat, p.Err)
			}
			continue
		}
		if p.Resumed {
			resumed++
		}
	}
	if resumed > 0 && *jdir != "" {
		fmt.Fprintf(os.Stderr, "vmsweep: %d of %d points replayed from journal %s\n", resumed, len(cfgs), *jdir)
	}
	if cancelled := byCategory["cancelled"]; cancelled > 0 {
		fmt.Fprintf(os.Stderr, "vmsweep: interrupted — %d of %d points not run\n", cancelled, len(cfgs))
	}
	if failed > 0 {
		// Per-category failure summary, categories in taxonomy order.
		var parts []string
		for _, cat := range mmusim.ErrorCategories() {
			if cat == "cancelled" {
				continue
			}
			if n := byCategory[cat]; n > 0 {
				parts = append(parts, fmt.Sprintf("%s=%d", cat, n))
			}
		}
		fmt.Fprintf(os.Stderr, "vmsweep: %d of %d points failed (%s); completed rows above are valid\n",
			failed, len(cfgs), strings.Join(parts, " "))
		exitCode = 3
	}
	if *manifest != "" {
		completed, retriedN := 0, 0
		var simTime time.Duration
		for _, p := range points {
			if p.Err == nil {
				completed++
			}
			if p.Attempts > 1 {
				retriedN++
			}
			simTime += p.Duration
		}
		var errCounts map[string]int
		for cat, count := range byCategory {
			if cat == "cancelled" {
				continue
			}
			if errCounts == nil {
				errCounts = map[string]int{}
			}
			errCounts[cat] = count
		}
		effWorkers := *workers
		if effWorkers <= 0 {
			effWorkers = runtime.GOMAXPROCS(0)
		}
		m := campaignManifest{
			Schema:      1,
			Benchmark:   label,
			TraceSHA256: mmusim.TraceSHA256(tr),
			TraceRefs:   tr.Len(),
			Configs:     len(cfgs),
			Workers:     effWorkers,
			WallSeconds: time.Since(start).Seconds(),
			SimSeconds:  simTime.Seconds(),
			Completed:   completed,
			Resumed:     resumed,
			Retried:     retriedN,
			Failed:      failed,
			Cancelled:   byCategory["cancelled"],
			Errors:      errCounts,
			ExitStatus:  exitCode,
		}
		data, merr := json.MarshalIndent(m, "", "  ")
		if merr != nil {
			fail(merr)
		}
		if werr := atomicio.WriteFile(*manifest, append(data, '\n'), 0o644); werr != nil {
			fail(werr)
		}
	}
	if *memProf != "" {
		f, ferr := atomicio.Create(*memProf)
		if ferr != nil {
			fail(ferr)
		}
		cleanups = append(cleanups, func() { f.Close() })
		runtime.GC()
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			fail(err)
		}
		if err := f.Commit(); err != nil {
			fail(err)
		}
	}
	if exitCode != 0 {
		// Flush the CPU profile and run the cleanups (debug-server
		// shutdown included) before the deliberate non-zero exit:
		// os.Exit skips every defer.
		stopCPUProfile()
		for i := len(cleanups) - 1; i >= 0; i-- {
			cleanups[i]()
		}
		os.Exit(exitCode)
	}
}
