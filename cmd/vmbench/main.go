// Command vmbench is the reproducible benchmark harness: it measures the
// simulator's own performance — not the simulated machine's — and emits a
// machine-readable BENCH_sim.json.
//
// For every requested organization it replays the same generated trace
// several times and reports the median throughput (references/second and
// ns/reference) plus the allocation rate (allocs/reference, which should
// be ~0: the engine's steady state is allocation-free). It then times one
// paper-style cache-size sweep to capture parallel sweep wall-clock.
//
// Usage:
//
//	vmbench                         # paper VMs, 200k-instruction gcc trace
//	vmbench -vms ultrix,intel -runs 5 -o BENCH_sim.json
//	vmbench -cpuprofile cpu.out     # profile the measured runs
//
// The defaults are sized so the whole harness finishes in well under a
// minute; see PERFORMANCE.md for how to read and compare the output.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	mmusim "repro"
	"repro/internal/atomicio"
	"repro/internal/trace"
	"repro/internal/version"
)

// engineBench is one organization's measured hot-path performance.
type engineBench struct {
	VM           string  `json:"vm"`
	Runs         int     `json:"runs"`
	References   int     `json:"references"`
	NsPerRef     float64 `json:"ns_per_ref"`
	RefsPerSec   float64 `json:"refs_per_sec"`
	AllocsPerOp  uint64  `json:"allocs_per_op"`
	AllocsPerRef float64 `json:"allocs_per_ref"`
	MCPI         float64 `json:"mcpi"`
	VMCPI        float64 `json:"vmcpi"`
}

// sweepBench is one timed sweep at a fixed worker count; the scaling
// series runs the identical campaign at 1/2/4/GOMAXPROCS workers.
type sweepBench struct {
	Configs      int     `json:"configs"`
	Workers      int     `json:"workers"`
	WallSeconds  float64 `json:"wall_seconds"`
	PointsPerSec float64 `json:"points_per_sec"`
	Speedup      float64 `json:"speedup_vs_serial"`
}

// multicoreBench is one core count's measured cluster throughput: the
// same instruction budget replayed through the multicore engine under a
// demand-paging OS policy with a bounded frame budget, so the timed
// path includes the kernel, page faults, and TLB shootdowns.
type multicoreBench struct {
	Cores      int     `json:"cores"`
	Policy     string  `json:"policy"`
	References int     `json:"references"`
	NsPerRef   float64 `json:"ns_per_ref"`
	RefsPerSec float64 `json:"refs_per_sec"`
	PageFaults uint64  `json:"page_faults"`
	Shootdowns uint64  `json:"shootdowns"`
}

// traceLoadBench times loading the same reference stream from one
// on-disk format through the auto-detecting OpenTraceFile path.
type traceLoadBench struct {
	Format      string  `json:"format"`
	Bytes       int64   `json:"bytes"`
	LoadSeconds float64 `json:"load_seconds"`
	NsPerRef    float64 `json:"ns_per_ref"`
}

// report is the BENCH_sim.json schema.
type report struct {
	Schema    string           `json:"schema"`
	Generated string           `json:"generated"`
	GoVersion string           `json:"go_version"`
	GOOS      string           `json:"goos"`
	GOARCH    string           `json:"goarch"`
	CPUs      int              `json:"cpus"`
	Bench     string           `json:"bench"`
	Instrs    int              `json:"instructions"`
	Seed      uint64           `json:"seed"`
	Engines   []engineBench    `json:"engines"`
	Sweep     []sweepBench     `json:"sweep,omitempty"`
	Multicore []multicoreBench `json:"multicore,omitempty"`
	TraceLoad []traceLoadBench `json:"trace_load,omitempty"`
}

func main() {
	var (
		vms       = flag.String("vms", "ultrix,mach,intel,pa-risc,notlb,base", "comma list of organizations, or 'all'")
		machineIn = flag.String("machine", "", "benchmark the machine from this spec file (JSON, see MACHINES.md) instead of -vms")
		listVMs   = flag.Bool("list-vms", false, "list every registered machine with its description and exit")
		bench     = flag.String("bench", "gcc", "benchmark trace to replay")
		n         = flag.Int("n", 200_000, "trace length in instructions")
		seed      = flag.Uint64("seed", 42, "deterministic seed")
		runs      = flag.Int("runs", 3, "timed runs per organization (median reported)")
		out       = flag.String("o", "BENCH_sim.json", "output path ('-' = stdout only)")
		doSweep   = flag.Bool("sweep", true, "also time one paper-style L1-size sweep")
		doMC      = flag.Bool("multicore", true, "also time the multicore scaling series (cores 1/2/4)")
		workers   = flag.Int("workers", 0, "sweep workers (0 = GOMAXPROCS)")
		cpuProf   = flag.String("cpuprofile", "", "write a pprof CPU profile of the measured runs to this file")
		ver       = flag.Bool("version", false, "print the engine version and exit")
	)
	flag.Parse()
	if *ver {
		fmt.Println(version.String())
		return
	}
	if *listVMs {
		for _, s := range mmusim.BundledMachines() {
			fmt.Printf("%-12s %s\n", s.Name, s.Description)
		}
		return
	}

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "vmbench:", err)
		os.Exit(1)
	}

	// configFor builds the measured configuration for a name — through
	// the -machine spec when given, the registry otherwise.
	var machineSpec *mmusim.MachineSpec
	vmList := strings.Split(*vms, ",")
	if *machineIn != "" {
		spec, err := mmusim.LoadMachineSpec(*machineIn)
		if err != nil {
			fail(err)
		}
		machineSpec = spec
		vmList = []string{spec.Name}
	} else if *vms == "all" {
		vmList = mmusim.VMs()
	}
	configFor := func(vm string) mmusim.Config {
		if machineSpec != nil {
			return mmusim.ConfigForMachine(machineSpec)
		}
		return mmusim.DefaultConfig(vm)
	}
	tr, err := mmusim.GenerateTrace(*bench, *seed, *n)
	if err != nil {
		fail(err)
	}
	refs := tr.Len()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	rep := report{
		Schema:    "mmusim-bench/v3",
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Bench:     *bench,
		Instrs:    *n,
		Seed:      *seed,
	}

	for _, vm := range vmList {
		cfg := configFor(strings.TrimSpace(vm))
		cfg.Seed = *seed
		// Warm run: faults in the trace pages and verifies the config
		// before anything is timed.
		res, err := mmusim.Simulate(cfg, tr)
		if err != nil {
			fail(err)
		}
		times := make([]float64, *runs)
		var allocs uint64
		var ms runtime.MemStats
		for i := range times {
			runtime.ReadMemStats(&ms)
			before := ms.Mallocs
			start := time.Now()
			if _, err := mmusim.Simulate(cfg, tr); err != nil {
				fail(err)
			}
			times[i] = time.Since(start).Seconds()
			runtime.ReadMemStats(&ms)
			allocs = ms.Mallocs - before
		}
		sort.Float64s(times)
		median := times[len(times)/2]
		eb := engineBench{
			VM:           cfg.VM,
			Runs:         *runs,
			References:   refs,
			NsPerRef:     median * 1e9 / float64(refs),
			RefsPerSec:   float64(refs) / median,
			AllocsPerOp:  allocs,
			AllocsPerRef: float64(allocs) / float64(refs),
			MCPI:         res.MCPI(),
			VMCPI:        res.VMCPI(),
		}
		rep.Engines = append(rep.Engines, eb)
		fmt.Fprintf(os.Stderr, "vmbench: %-12s %7.2f ns/ref  %6.1f Mref/s  %d allocs/op\n",
			eb.VM, eb.NsPerRef, eb.RefsPerSec/1e6, eb.AllocsPerOp)
	}

	if *doSweep {
		// The scaling campaign replays a .vmtrc round trip of the
		// generated trace — written to disk and memory-map-loaded back —
		// so the timed path is exactly what a file-driven sweep sees.
		tmp, err := os.MkdirTemp("", "vmbench")
		if err != nil {
			fail(err)
		}
		defer os.RemoveAll(tmp)
		vmtrcPath := filepath.Join(tmp, *bench+".vmtrc")
		if err := writeFile(vmtrcPath, func(f *os.File) error {
			return mmusim.WriteVMTRCTrace(f, tr)
		}); err != nil {
			fail(err)
		}
		sweepTr, err := mmusim.OpenTraceFile(vmtrcPath)
		if err != nil {
			fail(err)
		}

		space := mmusim.SweepSpace{Base: configFor(vmList[0])}
		space.Base.Seed = *seed
		space.L1Sizes = []int{1 << 10, 2 << 10, 4 << 10, 8 << 10, 16 << 10, 32 << 10, 64 << 10, 128 << 10}
		cfgs := space.Configs()

		series := []int{1, 2, 4, runtime.GOMAXPROCS(0)}
		if *workers > 0 {
			series = append(series, *workers)
		}
		series = dedupSorted(series)

		var serialWall float64
		for _, w := range series {
			start := time.Now()
			for _, p := range mmusim.Sweep(sweepTr, cfgs, w) {
				if p.Err != nil {
					fail(p.Err)
				}
			}
			wall := time.Since(start).Seconds()
			if w == 1 {
				serialWall = wall
			}
			sb := sweepBench{
				Configs:      len(cfgs),
				Workers:      w,
				WallSeconds:  wall,
				PointsPerSec: float64(len(cfgs)) / wall,
			}
			if serialWall > 0 {
				sb.Speedup = serialWall / wall
			}
			rep.Sweep = append(rep.Sweep, sb)
			fmt.Fprintf(os.Stderr, "vmbench: sweep %d points × %d workers in %.2fs (%.1f points/s, %.2fx)\n",
				len(cfgs), w, wall, sb.PointsPerSec, sb.Speedup)
		}

		rep.TraceLoad = timeTraceLoads(tmp, *bench, tr, fail)
	}

	if *doMC {
		// The multicore scaling series holds the instruction budget fixed
		// and grows the cluster, so ns/ref tracks the per-reference cost
		// of the kernel, demand paging, and shootdown traffic as cores
		// are added. LRU under a bounded budget keeps all three hot.
		const mcPolicy = "lru"
		for _, cores := range []int{1, 2, 4} {
			mcTr, err := mmusim.Multicore([]string{*bench}, *seed, cores, *n, 50_000)
			if err != nil {
				fail(err)
			}
			cfg := configFor(strings.TrimSpace(vmList[0]))
			cfg.Seed = *seed
			cfg.Cores = cores
			cfg.OSPolicy = mcPolicy
			cfg.MemFrames = 256
			cfg.ShootdownCost = 60
			res, err := mmusim.Simulate(cfg, mcTr)
			if err != nil {
				fail(err)
			}
			times := make([]float64, *runs)
			for i := range times {
				start := time.Now()
				if _, err := mmusim.Simulate(cfg, mcTr); err != nil {
					fail(err)
				}
				times[i] = time.Since(start).Seconds()
			}
			sort.Float64s(times)
			median := times[len(times)/2]
			mb := multicoreBench{
				Cores:      cores,
				Policy:     mcPolicy,
				References: mcTr.Len(),
				NsPerRef:   median * 1e9 / float64(mcTr.Len()),
				RefsPerSec: float64(mcTr.Len()) / median,
				PageFaults: res.Counters.Events[mmusim.EventPageFault],
				Shootdowns: res.Counters.Events[mmusim.EventShootdown],
			}
			rep.Multicore = append(rep.Multicore, mb)
			fmt.Fprintf(os.Stderr, "vmbench: multicore %d cores %7.2f ns/ref  %6.1f Mref/s  %d faults  %d shootdowns\n",
				mb.Cores, mb.NsPerRef, mb.RefsPerSec/1e6, mb.PageFaults, mb.Shootdowns)
		}
	}

	enc, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fail(err)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := atomicio.WriteFile(*out, enc, 0o644); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "vmbench: wrote %s\n", *out)
}

// writeFile creates path and streams through fn, closing on the way out.
func writeFile(path string, fn func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// dedupSorted sorts and uniques a small worker-count series.
func dedupSorted(xs []int) []int {
	sort.Ints(xs)
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// writeDin emits tr as Dinero text: an instruction-fetch line per
// record, followed by a data line when the instruction touches memory.
func writeDin(w *os.File, tr *mmusim.Trace) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	for _, r := range tr.Refs {
		fmt.Fprintf(bw, "2 %x\n", r.PC)
		switch r.Kind {
		case trace.Load:
			fmt.Fprintf(bw, "0 %x\n", r.Data)
		case trace.Store:
			fmt.Fprintf(bw, "1 %x\n", r.Data)
		}
	}
	return bw.Flush()
}

// timeTraceLoads writes the same stream in every supported on-disk
// format and times the auto-detecting load path on each (median of 3).
func timeTraceLoads(tmp, bench string, tr *mmusim.Trace, fail func(error)) []traceLoadBench {
	type format struct {
		name  string
		path  string
		write func(*os.File) error
	}
	formats := []format{
		{"dinero", filepath.Join(tmp, bench+".din"), func(f *os.File) error { return writeDin(f, tr) }},
		{"binary", filepath.Join(tmp, bench+".trc"), func(f *os.File) error { return mmusim.WriteTrace(f, tr) }},
		{"vmtrc", filepath.Join(tmp, bench+".load.vmtrc"), func(f *os.File) error { return mmusim.WriteVMTRCTrace(f, tr) }},
	}
	var out []traceLoadBench
	for _, ft := range formats {
		if err := writeFile(ft.path, ft.write); err != nil {
			fail(err)
		}
		fi, err := os.Stat(ft.path)
		if err != nil {
			fail(err)
		}
		times := make([]float64, 3)
		var loaded *mmusim.Trace
		for i := range times {
			start := time.Now()
			if loaded, err = mmusim.OpenTraceFile(ft.path); err != nil {
				fail(err)
			}
			times[i] = time.Since(start).Seconds()
		}
		sort.Float64s(times)
		median := times[len(times)/2]
		lb := traceLoadBench{
			Format:      ft.name,
			Bytes:       fi.Size(),
			LoadSeconds: median,
			NsPerRef:    median * 1e9 / float64(loaded.Len()),
		}
		out = append(out, lb)
		fmt.Fprintf(os.Stderr, "vmbench: load %-7s %9d bytes  %7.2f ns/ref\n", lb.Format, lb.Bytes, lb.NsPerRef)
	}
	return out
}
