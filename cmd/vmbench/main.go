// Command vmbench is the reproducible benchmark harness: it measures the
// simulator's own performance — not the simulated machine's — and emits a
// machine-readable BENCH_sim.json.
//
// For every requested organization it replays the same generated trace
// several times and reports the median throughput (references/second and
// ns/reference) plus the allocation rate (allocs/reference, which should
// be ~0: the engine's steady state is allocation-free). It then times one
// paper-style cache-size sweep to capture parallel sweep wall-clock.
//
// Usage:
//
//	vmbench                         # paper VMs, 200k-instruction gcc trace
//	vmbench -vms ultrix,intel -runs 5 -o BENCH_sim.json
//	vmbench -cpuprofile cpu.out     # profile the measured runs
//
// The defaults are sized so the whole harness finishes in well under a
// minute; see PERFORMANCE.md for how to read and compare the output.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	mmusim "repro"
	"repro/internal/atomicio"
	"repro/internal/version"
)

// engineBench is one organization's measured hot-path performance.
type engineBench struct {
	VM           string  `json:"vm"`
	Runs         int     `json:"runs"`
	References   int     `json:"references"`
	NsPerRef     float64 `json:"ns_per_ref"`
	RefsPerSec   float64 `json:"refs_per_sec"`
	AllocsPerOp  uint64  `json:"allocs_per_op"`
	AllocsPerRef float64 `json:"allocs_per_ref"`
	MCPI         float64 `json:"mcpi"`
	VMCPI        float64 `json:"vmcpi"`
}

// sweepBench is the timed parallel sweep.
type sweepBench struct {
	Configs      int     `json:"configs"`
	Workers      int     `json:"workers"`
	WallSeconds  float64 `json:"wall_seconds"`
	PointsPerSec float64 `json:"points_per_sec"`
}

// report is the BENCH_sim.json schema.
type report struct {
	Schema    string        `json:"schema"`
	Generated string        `json:"generated"`
	GoVersion string        `json:"go_version"`
	GOOS      string        `json:"goos"`
	GOARCH    string        `json:"goarch"`
	CPUs      int           `json:"cpus"`
	Bench     string        `json:"bench"`
	Instrs    int           `json:"instructions"`
	Seed      uint64        `json:"seed"`
	Engines   []engineBench `json:"engines"`
	Sweep     *sweepBench   `json:"sweep,omitempty"`
}

func main() {
	var (
		vms     = flag.String("vms", "ultrix,mach,intel,pa-risc,notlb,base", "comma list of organizations, or 'all'")
		bench   = flag.String("bench", "gcc", "benchmark trace to replay")
		n       = flag.Int("n", 200_000, "trace length in instructions")
		seed    = flag.Uint64("seed", 42, "deterministic seed")
		runs    = flag.Int("runs", 3, "timed runs per organization (median reported)")
		out     = flag.String("o", "BENCH_sim.json", "output path ('-' = stdout only)")
		doSweep = flag.Bool("sweep", true, "also time one paper-style L1-size sweep")
		workers = flag.Int("workers", 0, "sweep workers (0 = GOMAXPROCS)")
		cpuProf = flag.String("cpuprofile", "", "write a pprof CPU profile of the measured runs to this file")
		ver     = flag.Bool("version", false, "print the engine version and exit")
	)
	flag.Parse()
	if *ver {
		fmt.Println(version.String())
		return
	}

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "vmbench:", err)
		os.Exit(1)
	}

	vmList := strings.Split(*vms, ",")
	if *vms == "all" {
		vmList = mmusim.VMs()
	}
	tr, err := mmusim.GenerateTrace(*bench, *seed, *n)
	if err != nil {
		fail(err)
	}
	refs := tr.Len()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	rep := report{
		Schema:    "mmusim-bench/v1",
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Bench:     *bench,
		Instrs:    *n,
		Seed:      *seed,
	}

	for _, vm := range vmList {
		cfg := mmusim.DefaultConfig(strings.TrimSpace(vm))
		cfg.Seed = *seed
		// Warm run: faults in the trace pages and verifies the config
		// before anything is timed.
		res, err := mmusim.Simulate(cfg, tr)
		if err != nil {
			fail(err)
		}
		times := make([]float64, *runs)
		var allocs uint64
		var ms runtime.MemStats
		for i := range times {
			runtime.ReadMemStats(&ms)
			before := ms.Mallocs
			start := time.Now()
			if _, err := mmusim.Simulate(cfg, tr); err != nil {
				fail(err)
			}
			times[i] = time.Since(start).Seconds()
			runtime.ReadMemStats(&ms)
			allocs = ms.Mallocs - before
		}
		sort.Float64s(times)
		median := times[len(times)/2]
		eb := engineBench{
			VM:           cfg.VM,
			Runs:         *runs,
			References:   refs,
			NsPerRef:     median * 1e9 / float64(refs),
			RefsPerSec:   float64(refs) / median,
			AllocsPerOp:  allocs,
			AllocsPerRef: float64(allocs) / float64(refs),
			MCPI:         res.MCPI(),
			VMCPI:        res.VMCPI(),
		}
		rep.Engines = append(rep.Engines, eb)
		fmt.Fprintf(os.Stderr, "vmbench: %-12s %7.2f ns/ref  %6.1f Mref/s  %d allocs/op\n",
			eb.VM, eb.NsPerRef, eb.RefsPerSec/1e6, eb.AllocsPerOp)
	}

	if *doSweep {
		space := mmusim.SweepSpace{Base: mmusim.DefaultConfig(vmList[0])}
		space.Base.Seed = *seed
		space.L1Sizes = []int{1 << 10, 2 << 10, 4 << 10, 8 << 10, 16 << 10, 32 << 10, 64 << 10, 128 << 10}
		cfgs := space.Configs()
		w := *workers
		if w <= 0 {
			w = runtime.GOMAXPROCS(0)
		}
		start := time.Now()
		for _, p := range mmusim.Sweep(tr, cfgs, w) {
			if p.Err != nil {
				fail(p.Err)
			}
		}
		wall := time.Since(start).Seconds()
		rep.Sweep = &sweepBench{
			Configs:      len(cfgs),
			Workers:      w,
			WallSeconds:  wall,
			PointsPerSec: float64(len(cfgs)) / wall,
		}
		fmt.Fprintf(os.Stderr, "vmbench: sweep %d points × %d workers in %.2fs (%.1f points/s)\n",
			len(cfgs), w, wall, rep.Sweep.PointsPerSec)
	}

	enc, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fail(err)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := atomicio.WriteFile(*out, enc, 0o644); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "vmbench: wrote %s\n", *out)
}
