// End-to-end tests of the streaming service: a real vmserved process
// fed live over POST /v1/stream in randomized chunk sizes — including
// one SIGTERM mid-stream — asserting the streamed result is
// byte-identical to the batch path, and of the vmsim -stream / vmtrace
// -follow front-ends.
package cmd_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/workload"
)

func TestVMSimStreamMatchesLocalByteForByte(t *testing.T) {
	srv := startVMServed(t)
	dir := t.TempDir()
	localCSV := filepath.Join(dir, "local.csv")
	streamCSV := filepath.Join(dir, "stream.csv")
	base := []string{"-vm", "ultrix", "-bench", "gcc", "-n", "20000", "-warmup", "4000", "-sample", "3000", "-json"}

	local, errLocal, code := run(t, "vmsim", append(base, "-timeline", localCSV)...)
	if code != 0 {
		t.Fatalf("local vmsim exit %d, stderr: %s", code, errLocal)
	}
	streamed, errStream, code := run(t, "vmsim", append(base, "-timeline", streamCSV, "-stream", srv.base)...)
	if code != 0 {
		t.Fatalf("vmsim -stream exit %d, stderr: %s", code, errStream)
	}
	if streamed != local {
		t.Fatalf("-stream JSON differs from local JSON:\n--- local ---\n%s--- stream ---\n%s", local, streamed)
	}
	if !strings.Contains(errStream, "mcpi=") {
		t.Fatalf("-stream printed no live timeline rows to stderr:\n%s", errStream)
	}
	lc, err := os.ReadFile(localCSV)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := os.ReadFile(streamCSV)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(lc, sc) {
		t.Fatalf("-stream timeline CSV differs from local:\n--- local ---\n%s--- stream ---\n%s", lc, sc)
	}
}

// TestStreamSurvivesMidStreamSIGTERM streams a trace in randomized
// chunk sizes, SIGTERMs the daemon a third of the way through the
// upload, and requires the drain to finalize the stream with a result
// identical to a local batch run — and the daemon to exit 0.
func TestStreamSurvivesMidStreamSIGTERM(t *testing.T) {
	srv := startVMServed(t, "-drain-timeout", "60s")

	p, err := workload.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	tr := workload.Generate(p, 42, 30_000)
	cfg := sim.Default(sim.VMUltrix)
	cfg.WarmupInstrs = 5_000
	cfg.SampleEvery = 4_000
	batch, err := sim.Simulate(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}

	head, err := json.Marshal(api.StreamRequest{APIVersion: api.Version, Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	var body bytes.Buffer
	body.Write(head)
	if _, err := tr.WriteVMTRC(&body); err != nil {
		t.Fatal(err)
	}
	raw := body.Bytes()

	// Feed the body through a pipe in random-sized chunks, signalling
	// when a third has gone out so the test can SIGTERM mid-upload.
	pr, pw := io.Pipe()
	third := make(chan struct{})
	var feedErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer pw.Close()
		src := rng.New(7)
		sent, signalled := 0, false
		for sent < len(raw) {
			n := 1 + src.Intn(4096)
			if sent+n > len(raw) {
				n = len(raw) - sent
			}
			if _, err := pw.Write(raw[sent : sent+n]); err != nil {
				feedErr = err
				return
			}
			sent += n
			if !signalled && sent >= len(raw)/3 {
				close(third)
				signalled = true
			}
			time.Sleep(time.Millisecond)
		}
	}()

	resp, err := http.Post(srv.base+"/v1/stream", "application/octet-stream", pr)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}

	<-third
	if err := srv.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	// The draining daemon must keep consuming the upload and finish the
	// stream: ready, live samples, then a result matching batch.
	var evs []api.StreamEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 8<<20)
	for sc.Scan() {
		var ev api.StreamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		evs = append(evs, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading stream: %v", err)
	}
	wg.Wait()
	if feedErr != nil {
		t.Fatalf("feeding stream: %v", feedErr)
	}
	if len(evs) < 2 {
		t.Fatalf("got %d events", len(evs))
	}
	last := evs[len(evs)-1]
	if last.Type != api.StreamResult {
		t.Fatalf("terminal event %+v, want result (drain must finalize the stream)", last)
	}
	if *last.Result.Counters != batch.Counters {
		t.Fatalf("drained stream diverges from batch:\n got  %+v\n want %+v", *last.Result.Counters, batch.Counters)
	}
	samples := evs[1 : len(evs)-1]
	if len(samples) != len(batch.Timeline) {
		t.Fatalf("got %d sample events, batch recorded %d", len(samples), len(batch.Timeline))
	}
	for i, ev := range samples {
		if *ev.Sample != batch.Timeline[i] {
			t.Fatalf("sample %d diverges from batch timeline", i)
		}
	}

	// And the daemon drains to a clean exit.
	if err := srv.cmd.Wait(); err != nil {
		t.Fatalf("vmserved exited uncleanly after drain: %v", err)
	}
}

func TestVMTraceFollowTailsAGrowingFile(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.vmtrc")
	if _, errOut, code := run(t, "vmtrace", "-bench", "gcc", "-n", "40000", "-convert", "-o", full); code != 0 {
		t.Fatalf("vmtrace -convert exit %d, stderr: %s", code, errOut)
	}
	want, errOut, code := run(t, "vmtrace", "-i", full)
	if code != 0 {
		t.Fatalf("vmtrace -i exit %d, stderr: %s", code, errOut)
	}

	// Grow a copy of the file under a running -follow: first 60% up
	// front, the rest appended while the decoder is already tailing.
	raw, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	live := filepath.Join(dir, "live.vmtrc")
	cut := len(raw) * 6 / 10
	if err := os.WriteFile(live, raw[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(filepath.Join(binDir, "vmtrace"), "-follow", "-follow-timeout", "10s", "-i", live)
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)
	f, err := os.OpenFile(live, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(raw[cut:]); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := cmd.Wait(); err != nil {
		t.Fatalf("vmtrace -follow failed: %v\nstderr: %s", err, stderr.String())
	}
	if got := stdout.String(); got != want {
		t.Fatalf("-follow report differs from batch -i:\n--- batch ---\n%s--- follow ---\n%s", want, got)
	}
}
