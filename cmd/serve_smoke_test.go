// End-to-end tests of the simulation service: a real vmserved process
// on a random port, driven by `vmsweep -remote`, asserting the remote
// CSV is byte-identical to a local run — cold, warm (all cache hits),
// and after the client is killed and restarted mid-campaign.
package cmd_test

import (
	"bufio"
	"bytes"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// vmserved wraps one daemon process started on a random port.
type vmserved struct {
	cmd  *exec.Cmd
	base string // http://127.0.0.1:PORT
}

// startVMServed launches the daemon with the given extra flags, waits
// for its parseable "listening on" line, and registers teardown
// (SIGTERM, then wait) with the test.
func startVMServed(t *testing.T, extra ...string) *vmserved {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0"}, extra...)
	cmd := exec.Command(filepath.Join(binDir, "vmserved"), args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// The daemon prints "vmserved: listening on ADDR (engine ...)" once
	// the socket is bound.
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if _, rest, ok := strings.Cut(line, "listening on "); ok {
				addrCh <- strings.Fields(rest)[0]
			}
		}
	}()
	var base string
	select {
	case addr := <-addrCh:
		base = "http://" + addr
	case <-time.After(30 * time.Second):
		cmd.Process.Kill() //nolint:errcheck
		t.Fatal("vmserved never reported its listen address")
	}
	s := &vmserved{cmd: cmd, base: base}
	t.Cleanup(func() {
		s.cmd.Process.Signal(syscall.SIGTERM) //nolint:errcheck
		s.cmd.Wait()                          //nolint:errcheck
	})
	// Wait until the health endpoint answers.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return s
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("vmserved at %s never became healthy: %v", base, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// sweepArgs is the campaign used by every remote test: small enough to
// finish quickly, big enough to cross several points.
var sweepArgs = []string{"-bench", "gcc", "-n", "8000", "-vms", "ultrix,intel", "-l1", "1024,4096"}

func TestVMSweepRemoteByteIdenticalAndWarmCache(t *testing.T) {
	srv := startVMServed(t, "-cache-dir", t.TempDir())

	local, errLocal, code := run(t, "vmsweep", sweepArgs...)
	if code != 0 {
		t.Fatalf("local sweep exit %d, stderr: %s", code, errLocal)
	}
	remoteArgs := append([]string{"-remote", srv.base}, sweepArgs...)
	cold, errCold, code := run(t, "vmsweep", remoteArgs...)
	if code != 0 {
		t.Fatalf("remote sweep exit %d, stderr: %s", code, errCold)
	}
	if cold != local {
		t.Fatalf("remote CSV differs from local CSV:\n--- local ---\n%s--- remote ---\n%s", local, cold)
	}
	// Second run against the warm daemon: byte-identical again, every
	// point replayed from the cache, no simulation.
	warm, errWarm, code := run(t, "vmsweep", remoteArgs...)
	if code != 0 {
		t.Fatalf("warm remote sweep exit %d, stderr: %s", code, errWarm)
	}
	if warm != local {
		t.Fatalf("warm remote CSV differs from local:\n%s", warm)
	}
	if !strings.Contains(errWarm, "replayed from vmserved cache") {
		t.Fatalf("warm run did not report cache replay, stderr: %s", errWarm)
	}
}

func TestVMSweepRemoteKilledAndRestartedIsByteIdentical(t *testing.T) {
	srv := startVMServed(t, "-cache-dir", t.TempDir())
	local, errLocal, code := run(t, "vmsweep", sweepArgs...)
	if code != 0 {
		t.Fatalf("local sweep exit %d, stderr: %s", code, errLocal)
	}

	// Start a remote campaign and kill the client mid-flight. The
	// server keeps simulating the submitted job; whatever finished is
	// in the cache.
	remoteArgs := append([]string{"-remote", srv.base}, sweepArgs...)
	victim := exec.Command(filepath.Join(binDir, "vmsweep"), remoteArgs...)
	victim.Stdout, victim.Stderr = &bytes.Buffer{}, &bytes.Buffer{}
	if err := victim.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(150 * time.Millisecond) // let it upload and submit
	victim.Process.Kill()              //nolint:errcheck
	victim.Wait()                      //nolint:errcheck

	// The re-run campaign completes and is byte-identical to the local
	// run — finished points replay from the cache, the rest simulate.
	out, errOut, code := run(t, "vmsweep", remoteArgs...)
	if code != 0 {
		t.Fatalf("restarted remote sweep exit %d, stderr: %s", code, errOut)
	}
	if out != local {
		t.Fatalf("restarted remote CSV differs from local:\n--- local ---\n%s--- remote ---\n%s", local, out)
	}
}

func TestVMSweepRemoteRejectsJournalFlags(t *testing.T) {
	_, errOut, code := run(t, "vmsweep",
		"-remote", "http://127.0.0.1:1", "-journal", t.TempDir(), "-bench", "gcc", "-n", "1000")
	if code == 0 {
		t.Fatal("-remote with -journal did not fail")
	}
	if !strings.Contains(errOut, "incompatible") {
		t.Fatalf("unexpected error text: %s", errOut)
	}
}

func TestVersionFlagOnEveryTool(t *testing.T) {
	for _, tool := range []string{"vmsim", "vmtrace", "vmsweep", "vmexperiment", "vmserved"} {
		out, errOut, code := run(t, tool, "-version")
		if code != 0 {
			t.Fatalf("%s -version exit %d, stderr: %s", tool, code, errOut)
		}
		if !strings.Contains(out, "engine/") {
			t.Errorf("%s -version output %q lacks the engine identity", tool, out)
		}
	}
}

func TestVMServedDrainsOnSIGTERM(t *testing.T) {
	srv := startVMServed(t)
	if err := srv.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("vmserved exited non-zero on SIGTERM: %v", err)
		}
	case <-time.After(30 * time.Second):
		srv.cmd.Process.Kill() //nolint:errcheck
		t.Fatal("vmserved did not drain within 30s of SIGTERM")
	}
	// The port is released.
	if resp, err := http.Get(srv.base + "/v1/healthz"); err == nil {
		resp.Body.Close()
		t.Fatal("drained daemon still answering")
	}
}

// TestVMSweepRemoteMultiWorkerDaemonByteIdentical pins the remote half
// of the parallel determinism oracle: a campaign served by a 4-worker
// daemon must be byte-identical to a strictly serial local run, with
// points reassembled by index no matter which daemon worker finished
// first.
func TestVMSweepRemoteMultiWorkerDaemonByteIdentical(t *testing.T) {
	srv := startVMServed(t, "-workers", "4")

	local, errLocal, code := run(t, "vmsweep", append([]string{"-workers", "1"}, sweepArgs...)...)
	if code != 0 {
		t.Fatalf("local serial sweep exit %d, stderr: %s", code, errLocal)
	}
	remote, errRemote, code := run(t, "vmsweep", append([]string{"-remote", srv.base}, sweepArgs...)...)
	if code != 0 {
		t.Fatalf("remote sweep exit %d, stderr: %s", code, errRemote)
	}
	if remote != local {
		t.Fatalf("multi-worker daemon CSV differs from serial local run:\n--- local ---\n%s--- remote ---\n%s",
			local, remote)
	}
}
