// Command vmserved serves the MMU simulator over HTTP: clients upload a
// trace once (content-addressed by sha256), submit point or sweep jobs
// against it, and poll for results. Identical submissions are
// deduplicated in flight and memoized in a content-addressed result
// cache, so a sweep re-run against a warm daemon costs no simulation at
// all — and `vmsweep -remote` emits CSV byte-identical to a local run.
//
// Usage:
//
//	vmserved -addr localhost:8080
//	vmserved -addr localhost:8080 -cache-dir /var/cache/vmserved -workers 8 -queue 4096
//	vmsweep -remote http://localhost:8080 -bench gcc -vms all -l1 paper > gcc.csv
//
// Protocol: POST /v1/traces (binary trace body), POST /v1/jobs
// ({api_version, trace_sha256, configs[]}), GET /v1/jobs/{id}, GET
// /v1/healthz. A full queue answers 429 with Retry-After; a draining
// daemon answers 503. /debug/vars exposes queue depth, in-flight
// points, and cache hit rates; /debug/pprof/ serves live profiles.
//
// Streaming: POST /v1/stream accepts a JSON preamble followed by raw
// .vmtrc bytes on one long-lived connection, simulates block by block
// as the upload arrives, and pushes live MCPI/VMCPI timeline rows back
// as NDJSON (`vmsim -stream`). At most -max-streams run concurrently;
// beyond that, 429 with Retry-After. A SIGTERM drain finalizes
// in-flight streams before exiting.
//
// Lifecycle: SIGINT/SIGTERM starts a graceful drain — the listener
// stops accepting work, queued and in-flight points run to completion
// (bounded by -drain-timeout, then cancelled cooperatively), and the
// daemon exits 0.
//
// Health: GET /healthz answers liveness (the process is up); GET
// /readyz answers readiness (503 while draining or while the point
// queue is saturated), which is what fleet clients and the distributed
// coordinator fail over on.
//
// Coordinator mode: -coord URL1,URL2,... turns the daemon into a
// front-door — jobs it accepts are not simulated locally but fanned out
// across the listed vmserved workers through the fault-tolerant
// coordinator (internal/coord: leases, consistent-hash failover, work
// stealing), with this daemon's result cache and wire protocol
// unchanged from a client's point of view.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/coord"
	"repro/internal/obs"
	"repro/internal/rescache"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/trace"
	"repro/internal/version"
)

func main() {
	var (
		addr         = flag.String("addr", "localhost:8080", "HTTP listen address")
		workers      = flag.Int("workers", 0, "simulation workers (0 = GOMAXPROCS)")
		queue        = flag.Int("queue", 1024, "queued-point bound; beyond it submissions get 429 + Retry-After")
		maxStreams   = flag.Int("max-streams", 0, "concurrent /v1/stream bound; beyond it streams get 429 (0 = worker count)")
		cacheDir     = flag.String("cache-dir", "", "persist results content-addressed under this directory ('' = memory only)")
		cacheEntries = flag.Int("cache-entries", rescache.DefaultMaxEntries, "in-memory result cache bound")
		timeout      = flag.Duration("timeout", 0, "per-point deadline (0 = none)")
		retries      = flag.Int("retries", 0, "extra attempts for transiently-failing points")
		backoff      = flag.Duration("backoff", 100*time.Millisecond, "first retry delay; doubles per attempt")
		drain        = flag.Duration("drain-timeout", time.Minute, "on SIGTERM, bound the graceful drain; then in-flight points are cancelled")
		coordFleet   = flag.String("coord", "", "coordinator front-door: fan jobs out across these comma-separated vmserved worker endpoints instead of simulating locally")
		leaseTO      = flag.Duration("lease-timeout", coord.DefaultLeaseTimeout, "with -coord: no-progress deadline before a worker's lease is reclaimed")
		showVersion  = flag.Bool("version", false, "print the engine version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println(version.String())
		return
	}
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "vmserved:", err)
		os.Exit(1)
	}

	cache, err := rescache.New(*cacheDir, *cacheEntries)
	if err != nil {
		fail(err)
	}
	scfg := server.Config{
		Workers:      *workers,
		QueueBound:   *queue,
		MaxStreams:   *maxStreams,
		Cache:        cache,
		PointTimeout: *timeout,
		Retries:      *retries,
		Backoff:      *backoff,
	}
	if *coordFleet != "" {
		var endpoints []string
		for _, f := range strings.Split(*coordFleet, ",") {
			if f = strings.TrimSpace(f); f != "" {
				endpoints = append(endpoints, f)
			}
		}
		if len(endpoints) == 0 {
			fail(fmt.Errorf("-coord needs at least one worker endpoint"))
		}
		scfg.Campaign = func(ctx context.Context, tr *trace.Trace, cfgs []sim.Config, done func(int, sweep.Point)) error {
			_, err := coord.Run(ctx, tr, cfgs, coord.Options{
				Endpoints:    endpoints,
				LeaseTimeout: *leaseTO,
				PointDone:    done,
				Logf: func(format string, args ...any) {
					fmt.Fprintf(os.Stderr, "vmserved: "+format+"\n", args...)
				},
			})
			return err
		}
		fmt.Fprintf(os.Stderr, "vmserved: coordinator mode, %d worker(s)\n", len(endpoints))
	}
	srv := server.New(scfg)
	// Install the signal handler before the socket binds: once the
	// "listening on" line is out, a supervisor may SIGTERM at any time
	// and must get a drain, never the default kill disposition.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	hs, err := obs.StartHTTP(*addr, srv.Handler())
	if err != nil {
		fail(err)
	}
	// The parseable "listening on" line goes out after the socket is
	// bound, so supervisors (and the smoke tests) can wait for it.
	fmt.Fprintf(os.Stderr, "vmserved: listening on %s (engine %s)\n", hs.Addr, version.Engine())

	<-ctx.Done()
	fmt.Fprintf(os.Stderr, "vmserved: draining (up to %s)\n", *drain)

	// Stop accepting connections first, then drain the simulation queue.
	// The HTTP shutdown shares the drain budget: a live /v1/stream is an
	// in-flight request, and hs.Shutdown waits for it — cutting this off
	// at a short fixed timeout would sever streams mid-upload instead of
	// finalizing them.
	hctx, hcancel := context.WithTimeout(context.Background(), *drain)
	if err := hs.Shutdown(hctx); err != nil {
		hs.Close() //nolint:errcheck
	}
	hcancel()
	dctx, dcancel := context.WithTimeout(context.Background(), *drain)
	defer dcancel()
	if err := srv.Shutdown(dctx); err != nil {
		fmt.Fprintln(os.Stderr, "vmserved: drain deadline hit; in-flight points cancelled")
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "vmserved: drained cleanly")
}
