// Command vmsim runs a single memory-management simulation and prints the
// full MCPI/VMCPI break-down in the paper's Table 2/Table 3 taxonomy.
//
// Usage:
//
//	vmsim -vm ultrix -bench gcc -n 1000000
//	vmsim -vm pa-risc -bench vortex -l1 8192 -l2 1048576 -l1line 32 -l2line 64
//	vmsim -vm mach -bench gcc -timeline gcc.timeline.csv -sample 10000
//	vmsim -vm intel -bench vortex -n 10000000 -debug-addr localhost:6060
//	vmsim -machine mymachine.json -bench gcc
//	vmsim -vm ultrix -benches gcc,ijpeg -cores 4 -ospolicy lru -memframes 128 -shootdown 60
//	vmsim -stream http://localhost:8080 -vm ultrix -bench gcc -n 1000000
//	vmsim -list-vms
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	mmusim "repro"
	"repro/internal/atomicio"
	"repro/internal/client"
	"repro/internal/obs"
	"repro/internal/version"
)

// cleanups holds abort handlers for resources a fail() exit would
// otherwise strand: os.Exit skips deferred calls, and an uncommitted
// atomicio.File leaves its temporary file behind unless Closed. Close
// after a successful Commit is a no-op, so handlers are always safe to
// run.
var cleanups []func()

// fail reports err, aborts registered in-flight writes (newest first),
// and exits 1.
func fail(err error) {
	fmt.Fprintln(os.Stderr, "vmsim:", err)
	for i := len(cleanups) - 1; i >= 0; i-- {
		cleanups[i]()
	}
	os.Exit(1)
}

// startCPUProfile begins CPU profiling into path ("" = off) and returns
// the stop function. The abort path is registered in cleanups, so an
// error exit removes the pending temporary file instead of stranding
// it with the profile uncommitted.
func startCPUProfile(path string) (stop func(), err error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := atomicio.Create(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, err
	}
	cleanups = append(cleanups, func() {
		pprof.StopCPUProfile()
		f.Close()
	})
	return func() {
		pprof.StopCPUProfile()
		// Commit publishes the profile atomically; a run killed
		// mid-profile leaves no torn file behind.
		if err := f.Commit(); err != nil {
			fmt.Fprintln(os.Stderr, "vmsim:", err)
		}
	}, nil
}

// writeHeapProfile dumps an allocation profile to path ("" = off).
func writeHeapProfile(path string) error {
	if path == "" {
		return nil
	}
	f, err := atomicio.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC() // materialize final heap statistics
	if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
		return err
	}
	return f.Commit()
}

// listMachines prints every registered machine, bundled ones first in
// presentation order, with descriptions from the registry.
func listMachines(w *os.File) {
	seen := map[string]bool{}
	for _, s := range mmusim.BundledMachines() {
		fmt.Fprintf(w, "%-12s %s\n", s.Name, s.Description)
		seen[s.Name] = true
	}
	for _, name := range mmusim.VMs() {
		if seen[name] {
			continue
		}
		if s, err := mmusim.LookupMachine(name); err == nil {
			fmt.Fprintf(w, "%-12s %s\n", s.Name, s.Description)
		}
	}
}

func main() {
	var (
		vm        = flag.String("vm", mmusim.VMUltrix, "organization: one of "+fmt.Sprint(mmusim.VMs()))
		machineIn = flag.String("machine", "", "load the machine from this spec file (JSON, see MACHINES.md) instead of -vm")
		listVMs   = flag.Bool("list-vms", false, "list every registered machine with its description and exit")
		bench     = flag.String("bench", "gcc", "benchmark: one of "+fmt.Sprint(mmusim.Benchmarks()))
		n         = flag.Int("n", 1_000_000, "trace length in instructions")
		seed      = flag.Uint64("seed", 42, "deterministic seed")
		l1        = flag.Int("l1", 32<<10, "L1 cache size per side (bytes)")
		l2        = flag.Int("l2", 2<<20, "L2 cache size per side (bytes)")
		l1line    = flag.Int("l1line", 64, "L1 linesize (bytes)")
		l2line    = flag.Int("l2line", 128, "L2 linesize (bytes)")
		tlbN      = flag.Int("tlb", 128, "TLB entries per side")
		tlb2N     = flag.Int("tlb2", 0, "unified second-level TLB entries (0 = none)")
		tlb2Ways  = flag.Int("tlb2assoc", 0, "second-level TLB associativity (0 = fully associative)")
		intCost   = flag.Uint64("intcost", 50, "cycles per precise interrupt (paper: 10/50/200)")
		coresN    = flag.Int("cores", 1, "simulated cores; >1 runs the multicore cluster (private TLBs/caches, shared page table and OS kernel)")
		osPol     = flag.String("ospolicy", "first-touch", "OS page-allocation policy: one of "+fmt.Sprint(mmusim.OSPolicies()))
		frames    = flag.Int("memframes", 0, "physical frame budget in pages for demand paging (0 = unbounded)")
		shootFl   = flag.Uint64("shootdown", 0, "cycles per remote TLB shootdown (default: the machine spec's)")
		mpmix     = flag.String("benches", "", "comma list of benchmarks for a generated multicore/multiprogram trace (overrides -bench)")
		quantum   = flag.Int("quantum", 50_000, "scheduling quantum in instructions for a -benches trace")
		warmup    = flag.Int("warmup", 200_000, "uncharged warmup instructions (capped at half the trace)")
		asJSON    = flag.Bool("json", false, "emit the result as JSON instead of the text break-down")
		traceIn   = flag.String("tracefile", "", "replay this trace file instead of generating -bench")
		dinIn     = flag.String("din", "", "replay this Dinero-format text trace instead of generating -bench")
		doCheck   = flag.Bool("check", false, "replay the run through the differential oracle (internal/check) and fail on any divergence")
		invar     = flag.Bool("invariants", false, "assert conservation-law invariants on every simulation step (slower)")
		cpuProf   = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProf   = flag.String("memprofile", "", "write a pprof allocation profile to this file at exit")
		timeline  = flag.String("timeline", "", "write a per-interval MCPI/VMCPI timeline CSV to this file")
		sample    = flag.Int("sample", 10_000, "references per timeline interval (with -timeline or -stream)")
		streamURL = flag.String("stream", "", "stream the trace to this vmserved endpoint (POST /v1/stream) instead of simulating locally; live timeline rows go to stderr")
		debugAddr = flag.String("debug-addr", "", "serve net/http/pprof and expvar on this address (e.g. localhost:6060)")
		showVer   = flag.Bool("version", false, "print the engine version and exit")
	)
	flag.Parse()
	if *showVer {
		fmt.Println(version.String())
		return
	}
	if *listVMs {
		listMachines(os.Stdout)
		return
	}
	// Record which flags the user actually set: a machine spec seeds the
	// TLB hierarchy, which the TLB flags' defaults must not clobber.
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })

	stopProf, err := startCPUProfile(*cpuProf)
	if err != nil {
		fail(err)
	}
	defer stopProf()

	var cfg mmusim.Config
	if *machineIn != "" {
		if set["vm"] {
			fail(fmt.Errorf("-vm and -machine are mutually exclusive (the spec file names its machine)"))
		}
		spec, merr := mmusim.LoadMachineSpec(*machineIn)
		if merr != nil {
			fail(merr)
		}
		cfg = mmusim.ConfigForMachine(spec)
	} else {
		cfg = mmusim.DefaultConfig(*vm)
	}
	cfg.L1SizeBytes, cfg.L2SizeBytes = *l1, *l2
	cfg.L1LineBytes, cfg.L2LineBytes = *l1line, *l2line
	if set["tlb"] {
		cfg.TLBEntries = *tlbN
	}
	if set["tlb2"] {
		cfg.TLB2Entries = *tlb2N
	}
	if set["tlb2assoc"] {
		cfg.TLB2Assoc = *tlb2Ways
	}
	cfg.InterruptCost = *intCost
	cfg.WarmupInstrs = *warmup
	cfg.Seed = *seed
	cfg.CheckInvariants = *invar
	if set["cores"] {
		cfg.Cores = *coresN
	}
	if set["ospolicy"] {
		cfg.OSPolicy = *osPol
	}
	if set["memframes"] {
		cfg.MemFrames = *frames
	}
	if set["shootdown"] {
		cfg.ShootdownCost = *shootFl
	}
	if *timeline != "" || *streamURL != "" {
		if *sample <= 0 {
			fail(fmt.Errorf("-sample must be positive with -timeline/-stream, got %d", *sample))
		}
		cfg.SampleEvery = *sample
	}

	if *debugAddr != "" {
		dbg, derr := obs.ServeDebug(*debugAddr)
		if derr != nil {
			fail(derr)
		}
		// Tear the debug listener down on every exit path (fail() runs
		// the cleanups; normal return runs the defer) instead of
		// abandoning the socket to process teardown.
		cleanups = append(cleanups, func() { dbg.Close() }) //nolint:errcheck
		defer dbg.Close()                                   //nolint:errcheck
		obs.Publish("vmsim.config", func() any { return cfg })
		fmt.Fprintf(os.Stderr, "vmsim: debug server at http://%s/debug/pprof/ and /debug/vars\n", dbg.Addr)
	}

	var tr *mmusim.Trace
	switch {
	case *traceIn != "":
		// Classic binary, .vmtrc, or Dinero text — auto-detected.
		tr, err = mmusim.OpenTraceFile(*traceIn)
	case *dinIn != "":
		var f *os.File
		if f, err = os.Open(*dinIn); err == nil {
			tr, err = mmusim.ReadDineroTrace(f, *dinIn)
			f.Close()
		}
	default:
		if *mpmix != "" {
			var benches []string
			for _, b := range strings.Split(*mpmix, ",") {
				benches = append(benches, strings.TrimSpace(b))
			}
			cores := cfg.Cores
			if cores == 0 {
				cores = 1
			}
			tr, err = mmusim.Multicore(benches, *seed, cores, *n, *quantum)
		} else {
			tr, err = mmusim.GenerateTrace(*bench, *seed, *n)
		}
	}
	if err != nil {
		fail(err)
	}

	if *doCheck {
		report, cerr := mmusim.CheckDivergence(cfg, tr)
		if cerr != nil {
			fail(cerr)
		}
		if report != "" {
			fmt.Fprintln(os.Stderr, "vmsim: check: engine diverges from the reference models:")
			fmt.Fprintln(os.Stderr, report)
			fail(fmt.Errorf("check: divergence"))
		}
		// In JSON mode stdout must stay pure JSON for piping.
		dst := os.Stdout
		if *asJSON {
			dst = os.Stderr
		}
		fmt.Fprintf(dst, "check: engine and reference models agree over %d references\n", tr.Len())
	}

	var res *mmusim.Result
	if *streamURL != "" {
		res, err = streamRun(*streamURL, cfg, tr)
	} else {
		res, err = mmusim.Simulate(cfg, tr)
	}
	if err != nil {
		fail(err)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fail(err)
		}
	} else {
		fmt.Print(res.BreakdownString())
		fmt.Printf("  total CPI (1-CPI core + overheads @%d-cycle interrupts) = %.5f\n",
			cfg.InterruptCost, res.TotalCPI())
		if len(res.PerCore) > 1 {
			for i := range res.PerCore {
				c := &res.PerCore[i]
				fmt.Printf("  core %d: %8d instrs  mcpi=%.5f vmcpi=%.5f  faults=%d shootdowns=%d\n",
					i, c.UserInstrs, c.MCPI(), c.VMCPI(),
					c.Events[mmusim.EventPageFault], c.Events[mmusim.EventShootdown])
			}
		}
	}
	if *timeline != "" {
		f, terr := atomicio.Create(*timeline)
		if terr != nil {
			fail(terr)
		}
		cleanups = append(cleanups, func() { f.Close() })
		if err := mmusim.WriteTimelineCSV(f, res.Timeline); err != nil {
			fail(err)
		}
		if err := f.Commit(); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "vmsim: wrote %d timeline samples to %s\n", len(res.Timeline), *timeline)
	}
	if err := writeHeapProfile(*memProf); err != nil {
		fail(err)
	}
}

// streamRun runs cfg over tr on a remote vmserved through the streaming
// endpoint, echoing each live timeline row to stderr as it arrives, and
// rebuilds the local Result shape from the terminal event — so -json,
// the text break-down, and -timeline emit exactly what a local run
// would. The server pins the streamed engine bit-identical to batch,
// and Result.Config here is the same cfg, so every derived figure
// (MCPI, TotalCPI, CSV rows) matches by construction.
func streamRun(url string, cfg mmusim.Config, tr *mmusim.Trace) (*mmusim.Result, error) {
	c := client.New(url)
	fmt.Fprintf(os.Stderr, "vmsim: streaming %d refs to %s\n", tr.Len(), url)
	out, err := c.Stream(context.Background(), cfg, tr, func(s mmusim.TimelineSample) {
		fmt.Fprintf(os.Stderr, "vmsim: %9d  mcpi=%.5f vmcpi=%.5f (interval of %d refs)\n",
			s.Instr, s.Delta.MCPI(), s.Delta.VMCPI(), s.Delta.UserInstrs)
	})
	if err != nil {
		return nil, err
	}
	res := &mmusim.Result{
		Config:         cfg,
		Workload:       out.Result.Workload,
		AvgChainLength: out.Result.AvgChainLength,
		Timeline:       out.Timeline,
		PerCore:        out.Result.PerCore,
	}
	if out.Result.Counters != nil {
		res.Counters = *out.Result.Counters
	}
	fmt.Fprintf(os.Stderr, "vmsim: stream done: %d refs, %d bytes, engine %s\n", out.Refs, out.Bytes, out.Engine)
	return res, nil
}
