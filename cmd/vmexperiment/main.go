// Command vmexperiment regenerates the paper's tables and figures.
//
// Usage:
//
//	vmexperiment fig6                 # one experiment
//	vmexperiment fig8 fig9            # several
//	vmexperiment all                  # every table and figure
//	vmexperiment -quick -csv out/ all # fast pass, CSVs written per id
//
// Experiment ids: tab1–tab4 (the paper's tables), fig6–fig9 (its printed
// figures), fig10–fig12 (the interrupt/inflicted-miss/total-overhead
// results), tlbsize and hybrids (the abstract's TLB-sensitivity claim and
// the §4.2/§5 hybrid organizations).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	mmusim "repro"
	"repro/internal/atomicio"
	"repro/internal/version"
)

func main() {
	var (
		bench   = flag.String("bench", "", "override the experiment's default benchmark")
		n       = flag.Int("n", 0, "trace length in instructions (0 = experiment default)")
		seed    = flag.Uint64("seed", 42, "deterministic seed")
		quick   = flag.Bool("quick", false, "reduced-resolution fast pass")
		workers = flag.Int("workers", 0, "parallel simulations (0 = GOMAXPROCS)")
		csvDir  = flag.String("csv", "", "directory to write per-experiment CSV files into")
		ver     = flag.Bool("version", false, "print the engine version and exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: vmexperiment [flags] <id>... | all\nids: %v\nflags:\n",
			mmusim.Experiments())
		flag.PrintDefaults()
	}
	flag.Parse()
	if *ver {
		fmt.Println(version.String())
		return
	}

	ids := flag.Args()
	if len(ids) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if len(ids) == 1 && ids[0] == "all" {
		ids = mmusim.Experiments()
	}
	opts := mmusim.ExperimentOptions{
		Bench:        *bench,
		Instructions: *n,
		Seed:         *seed,
		Quick:        *quick,
		Workers:      *workers,
	}
	for _, id := range ids {
		rep, err := mmusim.RunExperiment(id, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vmexperiment:", err)
			os.Exit(1)
		}
		fmt.Printf("=== %s — %s ===\n\n%s\n", rep.ID, rep.Title, rep.Text)
		if *csvDir != "" && rep.CSV != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "vmexperiment:", err)
				os.Exit(1)
			}
			path := filepath.Join(*csvDir, rep.ID+".csv")
			if err := atomicio.WriteFile(path, []byte(rep.CSV), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "vmexperiment:", err)
				os.Exit(1)
			}
			fmt.Printf("(csv written to %s)\n\n", path)
		}
	}
}
