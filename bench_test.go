package mmusim

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (deliverable per-artifact benches) and measures simulator
// throughput per memory-management organization.
//
// Run everything:
//
//	go test -bench . -benchmem
//
// Each paper-artifact bench runs its experiment at reduced (Quick)
// resolution so the whole suite finishes in minutes; use cmd/vmexperiment
// for full-resolution reproductions. Custom metrics attach the headline
// numbers (vmcpi, mcpi) to the bench output so regressions in simulated
// behaviour — not just in speed — are visible in benchstat diffs.

import (
	"strings"
	"testing"
)

// benchTrace memoizes traces across benchmarks.
var benchTraces = map[string]*Trace{}

func benchTrace(b *testing.B, bench string, n int) *Trace {
	if tr, ok := benchTraces[bench]; ok && tr.Len() >= n {
		return &Trace{Name: tr.Name, Refs: tr.Refs[:n]}
	}
	tr, err := GenerateTrace(bench, 42, n)
	if err != nil {
		b.Fatal(err)
	}
	benchTraces[bench] = tr
	return tr
}

// runExperimentBench executes one paper experiment per iteration.
func runExperimentBench(b *testing.B, id string) {
	opts := ExperimentOptions{Quick: true, Seed: 42, Instructions: 60_000}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RunExperiment(id, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// Paper tables (static cost/configuration tables).

func BenchmarkTable1SimulationDetails(b *testing.B) { runExperimentBench(b, "tab1") }
func BenchmarkTable2MCPIComponents(b *testing.B)    { runExperimentBench(b, "tab2") }
func BenchmarkTable3VMCPIComponents(b *testing.B)   { runExperimentBench(b, "tab3") }
func BenchmarkTable4PageTableEvents(b *testing.B)   { runExperimentBench(b, "tab4") }

// Paper figures (simulation sweeps).

func BenchmarkFig6VMCPIvsCacheOrgGCC(b *testing.B)    { runExperimentBench(b, "fig6") }
func BenchmarkFig7VMCPIvsCacheOrgVortex(b *testing.B) { runExperimentBench(b, "fig7") }
func BenchmarkFig8BreakdownGCC(b *testing.B)          { runExperimentBench(b, "fig8") }
func BenchmarkFig9BreakdownVortex(b *testing.B)       { runExperimentBench(b, "fig9") }
func BenchmarkFig10InterruptOverhead(b *testing.B)    { runExperimentBench(b, "fig10") }
func BenchmarkFig11InflictedMisses(b *testing.B)      { runExperimentBench(b, "fig11") }
func BenchmarkFig12TotalOverhead(b *testing.B)        { runExperimentBench(b, "fig12") }

// Abstract claims and §4.2/§5 extensions.

func BenchmarkTLBSizeSensitivity(b *testing.B)  { runExperimentBench(b, "tlbsize") }
func BenchmarkHybridOrganizations(b *testing.B) { runExperimentBench(b, "hybrids") }

// Simulator throughput, one sub-benchmark per organization. The custom
// metrics expose the simulated results so behavioural drift shows up in
// benchstat output alongside performance drift.
func BenchmarkSimulate(b *testing.B) {
	const n = 200_000
	for _, vm := range VMs() {
		b.Run(strings.ReplaceAll(vm, "/", "-"), func(b *testing.B) {
			tr := benchTrace(b, "gcc", n)
			cfg := DefaultConfig(vm)
			b.ReportAllocs()
			b.ResetTimer()
			var lastVMCPI, lastMCPI float64
			for i := 0; i < b.N; i++ {
				res, err := Simulate(cfg, tr)
				if err != nil {
					b.Fatal(err)
				}
				lastVMCPI, lastMCPI = res.VMCPI(), res.MCPI()
			}
			b.StopTimer()
			instrPerSec := float64(n) * float64(b.N) / b.Elapsed().Seconds()
			b.ReportMetric(instrPerSec/1e6, "Minstr/s")
			b.ReportMetric(lastVMCPI, "vmcpi")
			b.ReportMetric(lastMCPI, "mcpi")
		})
	}
}

// BenchmarkWorkloadGeneration measures trace-generation throughput per
// benchmark model.
func BenchmarkWorkloadGeneration(b *testing.B) {
	for _, bench := range Benchmarks() {
		b.Run(bench, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := GenerateTrace(bench, uint64(i+1), 50_000); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationTLBPartitioning measures the effect of the 16
// protected slots (the design choice DESIGN.md calls out): ULTRIX with
// and without a partitioned TLB.
func BenchmarkAblationTLBPartitioning(b *testing.B) {
	tr := benchTrace(b, "gcc", 200_000)
	for _, prot := range []int{16, 0} {
		name := "partitioned"
		if prot == 0 {
			name = "unpartitioned"
		}
		b.Run(name, func(b *testing.B) {
			cfg := DefaultConfig(VMUltrix)
			cfg.TLBProtectedSlots = prot
			var last float64
			for i := 0; i < b.N; i++ {
				res, err := Simulate(cfg, tr)
				if err != nil {
					b.Fatal(err)
				}
				last = res.VMCPI()
			}
			b.ReportMetric(last, "vmcpi")
		})
	}
}

// BenchmarkAblationAssociativity measures the direct-mapped-vs-2-way
// choice the paper deliberately fixed ("set associative caches, while
// giving better performance, would add too many variables").
func BenchmarkAblationAssociativity(b *testing.B) {
	tr := benchTrace(b, "gcc", 200_000)
	for _, assoc := range []int{1, 2, 4} {
		b.Run(map[int]string{1: "direct", 2: "2way", 4: "4way"}[assoc], func(b *testing.B) {
			cfg := DefaultConfig(VMUltrix)
			cfg.L1Assoc, cfg.L2Assoc = assoc, assoc
			var last float64
			for i := 0; i < b.N; i++ {
				res, err := Simulate(cfg, tr)
				if err != nil {
					b.Fatal(err)
				}
				last = res.MCPI()
			}
			b.ReportMetric(last, "mcpi")
		})
	}
}

// BenchmarkAblationTLBPolicy compares random replacement (the paper's
// MIPS-like configuration) against LRU and FIFO.
func BenchmarkAblationTLBPolicy(b *testing.B) {
	tr := benchTrace(b, "gcc", 200_000)
	for name, policy := range map[string]TLBPolicy{"random": TLBRandom, "lru": TLBLRU, "fifo": TLBFIFO} {
		b.Run(name, func(b *testing.B) {
			cfg := DefaultConfig(VMUltrix)
			cfg.TLBPolicy = policy
			var last float64
			for i := 0; i < b.N; i++ {
				res, err := Simulate(cfg, tr)
				if err != nil {
					b.Fatal(err)
				}
				last = res.VMCPI()
			}
			b.ReportMetric(last, "vmcpi")
		})
	}
}
