// Package mmusim is a comparative simulator for memory management units,
// TLB-refill mechanisms, and page table organizations, reproducing
// Jacob & Mudge, "A Look at Several Memory Management Units, TLB-Refill
// Mechanisms, and Page Table Organizations" (ASPLOS VIII, 1998).
//
// The simulator drives synthetic SPEC'95-like reference streams through a
// split two-level virtually-addressed cache hierarchy and one of twelve
// memory-management organizations:
//
//   - ultrix   — 2-tier hierarchical table, software-managed TLB, bottom-up
//   - mach     — 3-tier hierarchical table, software-managed TLB, bottom-up
//   - intel    — 2-tier hierarchical table, hardware-managed TLB, top-down
//   - pa-risc  — hashed inverted table, software-managed TLB
//   - notlb    — software-managed caches, no TLB (softvm/VMP style)
//   - base     — no virtual memory (baseline cache behaviour)
//   - hw-mips, powerpc, spur, pfsm-hier, pfsm-hashed — the hybrid
//     organizations the paper interpolates (§4.2) and the programmable
//     finite-state-machine walker it proposes (§5)
//   - clustered — a Talluri & Hill-style subblocked hashed table, the
//     era's contemporary alternative
//   - l2tlb    — the ultrix organization behind a set-associative
//     unified second-level TLB (bundled extension)
//
// Every organization is a declarative machine spec — TLB hierarchy,
// refill mechanism, page-table organization, and handler cost model as
// data — resolved through a registry and serializable to JSON. Lookup a
// bundled machine with LookupMachine, load a custom one from a file
// with LoadMachineSpec (the vmsim/vmsweep -machine flag), or build one
// in code (see the ExampleParseMachineSpec example); ConfigForMachine
// turns any validated spec into a runnable Config. MACHINES.md at the
// repository root documents the full schema; the machines/ directory
// holds the bundled specs in canonical form.
//
// Measurements follow the paper's taxonomy: MCPI (memory-system cycles
// per user instruction, including the cache misses the VM system inflicts
// on the application) and VMCPI (page-table-walk and TLB-refill cycles
// per user instruction, broken down per Table 3), plus precise-interrupt
// counts evaluated at 10/50/200 cycles per interrupt.
//
// # Quick start
//
//	cfg := mmusim.DefaultConfig(mmusim.VMUltrix)
//	res, err := mmusim.RunBenchmark(cfg, "gcc", 42, 1_000_000)
//	if err != nil { ... }
//	fmt.Println(res.BreakdownString())
//
// The experiments subsystem regenerates every table and figure of the
// paper's evaluation:
//
//	rep, err := mmusim.RunExperiment("fig6", mmusim.ExperimentOptions{})
//	fmt.Println(rep.Text)
package mmusim
